#!/usr/bin/env python
"""Serving smoke test for CI (the ``serve-smoke`` job).

Boots the real daemon (``repro serve``) on an ephemeral port with a
persist directory, then walks the full tenant life cycle over HTTP:

1. register a program, query it (mode ``fresh``, full evaluation);
2. ingest new facts and query again (answers grow);
3. SIGKILL the daemon mid-flight;
4. restart it on the same persist directory, re-register the same
   workload and verify the tenant comes back ``warm`` — rebuilt from
   its checkpoint with **zero evaluation** — and that its materialized
   answers are byte-identical to the pre-kill daemon's.

Exits non-zero on any deviation: a cold restart (mode ``fresh`` after
the kill), missing answers, or any byte difference in the served JSON.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

PROGRAM = "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y)."
FACTS = "\n".join(f"e({i}, {i + 1})." for i in range(12))
INGESTED = "e(12, 13)."
TENANT = "smoke"


def _boot(persist_dir: Path) -> tuple[subprocess.Popen, ServeClient]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    )
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--persist-dir",
            str(persist_dir),
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    assert daemon.stdout is not None
    line = daemon.stdout.readline().strip()  # "serving on http://host:port"
    if not line.startswith("serving on "):
        raise RuntimeError(f"daemon did not announce its URL: {line!r}")
    url = line.removeprefix("serving on ")
    client = ServeClient.from_url(url, timeout=60)
    deadline = time.monotonic() + 30
    while True:
        try:
            client.health()
            break
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)
    return daemon, client


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        persist = Path(tmp) / "tenants"

        daemon, client = _boot(persist)
        try:
            registered = client.register(
                TENANT, PROGRAM, facts=FACTS, query="p"
            )
            print(f"registered: mode={registered['mode']}")
            if registered["mode"] != "fresh":
                return _fail(f"first registration was {registered['mode']!r}")

            first = client.query(TENANT, "p(0, Y)")
            if not first["answers"]:
                return _fail("fresh query returned no answers")

            client.ingest(TENANT, INGESTED)
            second = client.query(TENANT, "p(0, Y)")
            if len(second["answers"]) != len(first["answers"]) + 1:
                return _fail("ingest did not grow the answer set")
            print(
                f"queried: {len(first['answers'])} answers, "
                f"{len(second['answers'])} after ingest"
            )
            before = client.query(TENANT, "p(0, Y)", mode="materialized")
            before_bytes = json.dumps(before["answers"], sort_keys=True)
        finally:
            client.close()
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait(timeout=60)
        print(f"killed daemon pid {daemon.pid}")

        daemon, client = _boot(persist)
        try:
            # The restarted daemon re-registers the workload *as
            # ingested* — the post-ingest checkpoint anchors it.
            reregistered = client.register(
                TENANT, PROGRAM, facts=FACTS + "\n" + INGESTED, query="p"
            )
            print(
                f"re-registered: mode={reregistered['mode']}, "
                f"resumed_seq={reregistered['resumed_seq']}"
            )
            if reregistered["mode"] != "warm":
                return _fail(
                    f"restart recomputed (mode {reregistered['mode']!r}); "
                    "expected a warm start from the checkpoint"
                )
            after = client.query(TENANT, "p(0, Y)", mode="materialized")
            if after["materialized_mode"] != "warm":
                return _fail(
                    f"materialized mode is {after['materialized_mode']!r}, not warm"
                )
            after_bytes = json.dumps(after["answers"], sort_keys=True)
            if after_bytes != before_bytes:
                return _fail(
                    "warm answers differ from the pre-kill daemon\n"
                    f"  before: {before_bytes}\n  after:  {after_bytes}"
                )
            magic = client.query(TENANT, "p(0, Y)")
            if json.dumps(magic["answers"], sort_keys=True) != before_bytes:
                return _fail("magic-mode answers differ after the warm restart")
        finally:
            client.close()
            daemon.terminate()
            daemon.wait(timeout=60)
        print(f"warm answers byte-identical ({len(after['answers'])} rows)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
