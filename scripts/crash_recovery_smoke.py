#!/usr/bin/env python
"""Crash-recovery smoke test for CI.

Runs the ``bench_scaling`` workload as a durable session
(``checkpoint_every=1``), SIGKILLs the process mid-fixpoint, resumes
from the surviving checkpoints, and verifies the resumed fixpoint
digest against the committed ``BENCH_results.json`` baseline.  Exits
non-zero on any deviation: no checkpoints written, the kill landing
after completion, a resume that recomputes from scratch, or a digest
mismatch.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/crash_recovery_smoke.py

The script spawns *itself* with ``--child`` for the victim process so
the workload needs no on-disk serialization.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import build_workloads  # noqa: E402
from repro.persist import CheckpointStore, Session, fixpoint_digest  # noqa: E402

WORKLOAD = "bench_scaling"
ENGINE_KEY = "slots-cost"
# Pace the child's rounds so the kill reliably lands mid-fixpoint.
CHILD_THROTTLE = 0.2


def _unit():
    (unit,) = build_workloads(quick=False)[WORKLOAD]
    return unit


def _run_child(checkpoint_dir: str) -> int:
    unit = _unit()
    Session(
        unit.program,
        unit.make_database(),
        store=CheckpointStore(checkpoint_dir),
        checkpoint_every=1,
        throttle=CHILD_THROTTLE,
    ).run()
    return 0


def _wait_for_checkpoints(directory: Path, minimum: int, timeout: float) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        count = len(list(directory.glob("ckpt-*.json")))
        if count >= minimum:
            return count
        time.sleep(0.02)
    return len(list(directory.glob("ckpt-*.json")))


def _baseline_digest() -> str:
    payload = json.loads((REPO_ROOT / "BENCH_results.json").read_text())
    return payload["workloads"][WORKLOAD]["engines"][ENGINE_KEY]["fixpoint_sha256"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", metavar="DIR", help=argparse.SUPPRESS)
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="checkpoint directory (default: a fresh temporary directory)",
    )
    args = parser.parse_args()
    if args.child:
        return _run_child(args.child)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        ckpt_dir = Path(args.checkpoint_dir or tmp)
        ckpt_dir.mkdir(parents=True, exist_ok=True)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
        )
        child = subprocess.Popen(
            [sys.executable, os.path.abspath(__file__), "--child", str(ckpt_dir)],
            env=env,
        )
        try:
            count = _wait_for_checkpoints(ckpt_dir, minimum=2, timeout=60.0)
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.wait(timeout=60)
        print(f"killed session pid {child.pid} after {count} checkpoint(s)")
        if count < 2:
            print("FAIL: no mid-fixpoint checkpoints were written", file=sys.stderr)
            return 1
        if child.returncode != -signal.SIGKILL:
            print(
                f"FAIL: child exited with {child.returncode} before the kill",
                file=sys.stderr,
            )
            return 1

        interrupted = CheckpointStore(ckpt_dir).latest()
        if interrupted is None or interrupted.complete:
            print("FAIL: kill landed after the fixpoint completed", file=sys.stderr)
            return 1
        print(
            f"latest surviving checkpoint: seq {interrupted.seq}, "
            f"iteration {interrupted.snapshot.iteration} (incomplete)"
        )

        unit = _unit()
        outcome = Session(
            unit.program,
            unit.make_database(),
            store=CheckpointStore(ckpt_dir),
            checkpoint_every=1,
        ).resume()
        if outcome.mode != "resumed":
            print(f"FAIL: expected a resume, got mode {outcome.mode!r}", file=sys.stderr)
            return 1
        print(f"resumed from checkpoint seq {outcome.resumed_seq}")

        digest = fixpoint_digest([(unit.label, outcome.result.idb)])
        baseline = _baseline_digest()
        if digest != baseline:
            print(
                "FAIL: resumed fixpoint digest diverged from the committed "
                f"baseline\n  resumed:  {digest}\n  baseline: {baseline}",
                file=sys.stderr,
            )
            return 1
        print(f"resumed fixpoint digest matches baseline: {digest}")
        return 0


if __name__ == "__main__":
    sys.exit(main())
