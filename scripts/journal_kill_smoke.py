#!/usr/bin/env python
"""Journal-kill smoke test for CI (the ``chaos-smoke`` job).

Two kill scenarios against the write-ahead ingest journal, both judged
by one rule: after a restart, the served fixpoint must equal a clean
from-scratch recompute over the initial EDB plus every *acknowledged*
ingest.

1. **Daemon kill.** Boot the real daemon (``repro serve``) with a
   persist directory, register a tenant, acknowledge two ingests over
   HTTP, SIGKILL the daemon, restart it and re-register with the
   *original* facts only.  Recovery must surface both acked ingests by
   itself — from the self-contained checkpoint and the journal — and
   the answers must be byte-identical to an in-process recompute over
   initial + ingested facts.

2. **Fsync-window kill.** A child process acknowledges one ingest whose
   checkpoint save is forced to fail (acked but journal-covered only),
   then dies by SIGKILL while a second ingest faults at
   ``journal.fsync``.  The un-acked record's bytes may or may not be
   durable, so recovery is allowed to land on either admissible state —
   acked-only or acked-plus-inflight — but never anything else, and the
   acked ingest must be replayed from the journal (``replayed >= 1``).

Exits non-zero on any deviation.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/journal_kill_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datalog.database import Database  # noqa: E402
from repro.datalog.evaluation import evaluate  # noqa: E402
from repro.datalog.parser import parse_facts, parse_program  # noqa: E402
from repro.persist import (  # noqa: E402
    CheckpointStore,
    FlakyStore,
    RetryPolicy,
    Session,
    fixpoint_digest,
)
from repro.persist.journal import FlakyJournal, JournalUnavailable  # noqa: E402
from repro.robustness import FaultInjector  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402

PROGRAM = "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y)."
FACTS = "\n".join(f"e({i}, {i + 1})." for i in range(12))
INGESTS = ["e(12, 13).", "e(13, 14)."]
TENANT = "journal-smoke"

FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0)


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def _boot(persist_dir: Path) -> tuple[subprocess.Popen, ServeClient]:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
    )
    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--persist-dir",
            str(persist_dir),
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )
    assert daemon.stdout is not None
    line = daemon.stdout.readline().strip()
    if not line.startswith("serving on "):
        raise RuntimeError(f"daemon did not announce its URL: {line!r}")
    client = ServeClient.from_url(line.removeprefix("serving on "), timeout=60)
    deadline = time.monotonic() + 30
    while True:
        try:
            client.health()
            break
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)
    return daemon, client


def _expected_answers(*fact_blocks: str) -> str:
    """Canonical JSON of p(0, Y) under a clean in-process recompute."""
    program = parse_program(PROGRAM, query="p")
    database = Database(parse_facts("\n".join(fact_blocks)))
    rows = sorted(r for r in evaluate(program, database).query_rows() if r[0] == 0)
    return json.dumps([list(row) for row in rows], sort_keys=True)


def _served_answers(payload: dict) -> str:
    return json.dumps(sorted(payload["answers"]), sort_keys=True)


def daemon_kill_phase() -> int:
    """Register, ack two ingests, SIGKILL, restart with original facts."""
    with tempfile.TemporaryDirectory() as tmp:
        persist = Path(tmp) / "tenants"
        daemon, client = _boot(persist)
        try:
            registered = client.register(TENANT, PROGRAM, facts=FACTS, query="p")
            if registered["mode"] != "fresh":
                return _fail(f"first registration was {registered['mode']!r}")
            for facts in INGESTS:
                client.ingest(TENANT, facts)  # each return is the ack
            print(f"daemon-kill: acked {len(INGESTS)} ingests")
        finally:
            client.close()
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait(timeout=60)
        print(f"daemon-kill: killed pid {daemon.pid}")

        daemon, client = _boot(persist)
        try:
            # Original facts only: recovery itself must carry the
            # acknowledged ingests across the restart.
            reregistered = client.register(TENANT, PROGRAM, facts=FACTS, query="p")
            mode = reregistered["mode"]
            if mode == "fresh":
                return _fail("restart recomputed from the original facts; "
                             "acked ingests were lost")
            answer = client.query(TENANT, "p(0, Y)", mode="materialized")
            got = _served_answers(answer)
            expect = _expected_answers(FACTS, *INGESTS)
            if got != expect:
                return _fail(
                    "restart answers differ from the clean recompute\n"
                    f"  expect: {expect}\n  got:    {got}"
                )
            stats = client.stats()
            print(
                f"daemon-kill: mode={mode}, answers byte-identical "
                f"({len(answer['answers'])} rows), "
                f"journal lag={stats['journal']['lag']}"
            )
        finally:
            client.close()
            daemon.terminate()
            daemon.wait(timeout=60)
    return 0


def child(root: Path) -> None:
    """The crashing process of the fsync-window phase."""
    program = parse_program(PROGRAM, query="p")
    database = Database(parse_facts(FACTS))
    store = CheckpointStore(root)
    session = Session(program, database, store=store, retry=FAST_RETRY)
    session.run()
    # Checkpoint saves now fail: the next ingest is acked by its journal
    # fsync alone, so only a replay can carry it across the kill.
    session.store = FlakyStore(
        store, FaultInjector().arm_random("checkpoint.save", rate=1.0)
    )
    session.ingest([("e", (12, 13))])
    print("acked", flush=True)
    # The second ingest faults at the fsync itself: never acknowledged,
    # bytes possibly durable — the indeterminate crash window.
    session.journal = FlakyJournal(
        session.journal, FaultInjector().arm_random("journal.fsync", rate=1.0)
    )
    try:
        session.ingest([("e", (13, 14))])
    except JournalUnavailable:
        pass
    os.kill(os.getpid(), signal.SIGKILL)


def fsync_window_phase() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "session"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")])
        )
        proc = subprocess.run(
            [sys.executable, __file__, "--child", str(root)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
            timeout=120,
        )
        if proc.returncode != -signal.SIGKILL:
            return _fail(f"child exited {proc.returncode}, expected SIGKILL")
        if "acked" not in proc.stdout:
            return _fail("child never acknowledged its first ingest")
        print("fsync-window: child acked one ingest and died by SIGKILL")

        program = parse_program(PROGRAM, query="p")
        database = Database(parse_facts(FACTS))
        recovered = Session(program, database, store=CheckpointStore(root)).recover()
        digest = fixpoint_digest([("smoke", recovered.result.idb)])
        acked_only = _digest_of(FACTS, INGESTS[0])
        with_inflight = _digest_of(FACTS, *INGESTS)
        if digest not in {acked_only, with_inflight}:
            return _fail(
                "recovered fixpoint matches neither admissible state\n"
                f"  acked-only:    {acked_only}\n"
                f"  with-inflight: {with_inflight}\n"
                f"  recovered:     {digest}"
            )
        if recovered.replayed < 1:
            return _fail(
                f"acked ingest was not replayed (replayed={recovered.replayed})"
            )
        state = "acked-only" if digest == acked_only else "acked+inflight"
        print(
            f"fsync-window: recovered to {state}, "
            f"replayed={recovered.replayed}, digest matches clean recompute"
        )
    return 0


def _digest_of(*fact_blocks: str) -> str:
    program = parse_program(PROGRAM, query="p")
    database = Database(parse_facts("\n".join(fact_blocks)))
    return fixpoint_digest([("smoke", evaluate(program, database).idb)])


def main() -> int:
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        child(Path(sys.argv[2]))
        return 0  # unreachable: child dies by SIGKILL
    code = daemon_kill_phase()
    if code:
        return code
    return fsync_window_phase()


if __name__ == "__main__":
    sys.exit(main())
