"""Property test: both evaluation strategies agree on random programs.

The ``workloads`` generators produce layered recursive programs with
filters and EDB negation; the naive evaluator is the oracle for the
semi-naive one on every seeded case.
"""

import pytest

from repro.datalog.evaluation import evaluate
from repro.workloads import random_database, random_program, random_workload

SEEDS = range(20)


@pytest.mark.parametrize("seed", SEEDS)
def test_naive_and_seminaive_agree(seed):
    program = random_program(seed)
    database = random_database(seed * 31 + 7)
    semi = evaluate(program, database, strategy="seminaive")
    naive = evaluate(program, database, strategy="naive")
    for predicate in program.idb_predicates:
        assert semi.rows(predicate) == naive.rows(predicate), (seed, predicate)


@pytest.mark.parametrize("seed", SEEDS)
def test_strategies_agree_on_magic_programs(seed):
    """Same property over the magic-transformed random workloads —
    the guarded programs exercise 0-ary predicates and seed facts."""
    from repro.magic import magic_transform

    program, database, atom = random_workload(seed)
    magic = magic_transform(program, atom)
    semi = evaluate(magic.program, database, strategy="seminaive")
    naive = evaluate(magic.program, database, strategy="naive")
    for predicate in magic.program.idb_predicates:
        assert semi.rows(predicate) == naive.rows(predicate), (seed, predicate)


def test_random_program_is_deterministic():
    assert repr(random_program(3)) == repr(random_program(3))
    assert set(random_database(3).facts()) == set(random_database(3).facts())
