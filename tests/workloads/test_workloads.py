"""Workload sanity: generated databases are consistent with their ic's,
scale with parameters, and are deterministic per seed."""

import pytest

from repro.constraints.integrity import database_satisfies
from repro.datalog.evaluation import evaluate
from repro.workloads.generators import (
    ab_database,
    ab_inconsistent_database,
    chain_steps,
    flight_database,
    good_path_database,
    good_path_inconsistent_database,
    same_generation_database,
)
from repro.workloads.programs import (
    ab_transitive_closure,
    flight_routes,
    good_path,
    good_path_order_constraints,
    same_generation,
)


class TestChainSteps:
    def test_length_and_monotonicity(self):
        steps = chain_steps(5, start=10)
        assert len(steps) == 5
        assert all(left < right for left, right in steps)
        assert steps[0] == (10, 11)

    def test_stride(self):
        assert chain_steps(2, start=0, stride=3) == [(0, 3), (3, 6)]


class TestGoodPathWorkload:
    def test_consistent_with_all_constraint_sets(self):
        db = good_path_database(seed=3)
        _, plain = good_path()
        _, ordered = good_path_order_constraints()
        assert database_satisfies(plain, db)
        assert database_satisfies(ordered, db)

    def test_query_nonempty(self):
        program, _ = good_path()
        db = good_path_database(seed=0)
        assert evaluate(program, db).query_rows()

    def test_inconsistent_variant(self):
        _, ordered = good_path_order_constraints()
        assert not database_satisfies(ordered, good_path_inconsistent_database())

    def test_deterministic(self):
        first = good_path_database(seed=7)
        second = good_path_database(seed=7)
        assert first.relation("step").rows() == second.relation("step").rows()

    def test_scales(self):
        small = good_path_database(num_chains=2, chain_length=5)
        large = good_path_database(num_chains=6, chain_length=30)
        assert large.size() > small.size()


class TestAbWorkload:
    def test_consistent(self):
        _, constraints = ab_transitive_closure()
        assert database_satisfies(constraints, ab_database(seed=5))

    def test_inconsistent_variant(self):
        _, constraints = ab_transitive_closure()
        assert not database_satisfies(constraints, ab_inconsistent_database())

    def test_has_mixed_paths(self):
        program, _ = ab_transitive_closure()
        db = ab_database(num_b=10, num_a=10, seed=1)
        rows = evaluate(program, db).query_rows()
        # Some path crosses from the b-zone into the a-zone.
        assert any(x < 10 and y > 10 for x, y in rows)


class TestSameGenerationWorkload:
    def test_consistent(self):
        _, constraints = same_generation()
        assert database_satisfies(constraints, same_generation_database())

    def test_tree_shape(self):
        db = same_generation_database(depth=3, fanout=2)
        # Complete binary trees of depth 3: 15 nodes each side.
        assert len(db.relation("leftTree")) == 15
        assert len(db.relation("rightTree")) == 15
        assert len(db.relation("parent")) == 28


class TestFlightWorkload:
    def test_consistent(self):
        _, constraints = flight_routes()
        assert database_satisfies(constraints, flight_database(seed=2))

    def test_a_segments_avoid_hub_arrivals(self):
        db = flight_database(seed=0, hubs=(0, 1))
        for row in db.relation("segment_a", 3):
            assert row[1] not in (0, 1)

    def test_fares_positive(self):
        db = flight_database(seed=0)
        for pred in ("segment_a", "segment_b"):
            for row in db.relation(pred, 3):
                assert row[2] > 0
