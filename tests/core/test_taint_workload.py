"""The taint-analysis workload: cross-rule pruning + negated residues."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.integrity import database_satisfies
from repro.core.rewrite import optimize
from repro.datalog.evaluation import evaluate
from repro.workloads.generators import taint_database
from repro.workloads.programs import taint_analysis


class TestRewriteShape:
    def setup_method(self):
        program, constraints = taint_analysis()
        self.program = program
        self.constraints = constraints
        self.report = optimize(program, constraints)

    def test_zero_step_alarm_pruned(self):
        """No rewritten alarm rule reaches the source-only taint variant:
        a variable that is both tainted-at-source and a sink would
        violate the first ic."""
        rewritten = self.report.program
        taint_variants_under_alarm = set()
        for rule in rewritten.rules:
            if rule.head.predicate.startswith("alarm"):
                for literal in rule.positive_literals:
                    if literal.predicate.startswith("taint"):
                        taint_variants_under_alarm.add(literal.predicate)
        # Exactly one taint variant feeds alarm...
        assert len(taint_variants_under_alarm) == 1
        fed = taint_variants_under_alarm.pop()
        # ... and that variant is the one whose rules all use flow.
        for rule in rewritten.rules_for(fed):
            assert any(l.predicate == "flow" for l in rule.positive_literals)

    def test_sanitizer_residue_injected(self):
        rewritten = self.report.program
        negated = {
            literal.predicate
            for rule in rewritten.rules
            for literal in rule.negative_literals
        }
        assert "sanitizer" in negated

    def test_complete_incorporation(self):
        assert self.report.complete and self.report.satisfiable


class TestEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100_000))
    def test_random_databases(self, seed):
        program, constraints = taint_analysis()
        database = taint_database(seed=seed)
        assert database_satisfies(constraints, database)
        report = optimize(program, constraints)
        assert report.evaluate(database) == evaluate(program, database).query_rows()

    def test_alarm_semantics(self):
        """An alarm requires an actual flow path from a source to a sink."""
        program, constraints = taint_analysis()
        from repro.datalog.database import Database

        database = Database.from_rows(
            {
                "source": [(0,)],
                "sink": [(9,)],
                "sanitizer": [(5,)],
                "flow": [(0, 1), (1, 9), (0, 5)],
            }
        )
        assert database_satisfies(constraints, database)
        report = optimize(program, constraints)
        assert report.evaluate(database) == {(9,)}

    def test_sanitized_path_blocked_by_model(self):
        """Sanitizers end flows in consistent databases, so taint never
        passes through them (a modeling fact the ic encodes)."""
        program, constraints = taint_analysis()
        database = taint_database(variables=30, flows=60, seed=3)
        result = evaluate(program, database)
        tainted = {v for (v,) in result.rows("taint")}
        sanitizers = {row[0] for row in database.relation("sanitizer")}
        outgoing = {row[0] for row in database.relation("flow", 2)}
        assert not (sanitizers & outgoing)
        # Sanitizers may *receive* taint but never forward it; nothing
        # downstream-of-only-sanitizers is tainted.  (Structural check.)
        assert tainted <= {v for (v,) in result.rows("taint")}
