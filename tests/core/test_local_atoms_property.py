"""Randomized Theorem 4.2 coverage: local order/negated ic's.

Random edge programs with random *local* ic's (threshold filters, edge
monotonicity, gate predicates); databases repaired by deleting
violation supports (sound for these monotone ic shapes).  Equivalence
of P and P' must hold on every repaired database.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.integrity import database_satisfies
from repro.core.rewrite import optimize
from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_constraints, parse_program


def make_workload(seed: int):
    rng = random.Random(seed)
    program = parse_program(
        """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), t(Z, Y).
        q(X, Y) :- src(X), t(X, Y).
        """,
        query="q",
    )
    ic_pool = [
        ":- e(X, Y), X >= Y.",                 # local order: edges increase
        ":- e(X, Y), X > Y.",                  # weaker variant
        f":- e(X, Y), X < {rng.randint(0, 3)}.",   # threshold on origins
        f":- src(X), X > {rng.randint(2, 6)}.",    # bounded sources
        ":- e(X, Y), not open_gate(X).",        # local negated atom
    ]
    rng.shuffle(ic_pool)
    constraints = parse_constraints("\n".join(ic_pool[: rng.randint(1, 3)]))
    return program, constraints


def make_database(seed: int) -> Database:
    rng = random.Random(seed ^ 0x5EED)
    return Database.from_rows(
        {
            "e": {(rng.randint(0, 7), rng.randint(0, 7)) for _ in range(12)},
            "src": {(rng.randint(0, 7),) for _ in range(3)},
            "open_gate": {(rng.randint(0, 7),) for _ in range(6)},
        }
    )


def repair(database: Database, constraints) -> Database:
    """Delete one positive support of each violation until consistent.

    These ic's are monotone in the positive atoms (negated atoms only
    appear as ``not open_gate`` whose removal is never needed — we
    delete the edge instead), so deletion terminates.
    """
    from repro.constraints.integrity import violations
    from repro.datalog.atoms import Atom
    from repro.datalog.program import Program
    from repro.datalog.rules import Rule
    from repro.datalog.terms import Constant, Variable

    current = {
        predicate: set(database.relation(predicate))
        for predicate in database.predicates()
    }
    for _ in range(200):
        db = Database.from_rows(current)
        dirty = False
        for ic in constraints:
            head_vars = tuple(sorted(ic.variables(), key=lambda v: v.name))
            probe = Program(
                [Rule(Atom("__w__", head_vars), ic.body)], "__w__", validate=False
            )
            rows = evaluate(probe, db).rows("__w__")
            if not rows:
                continue
            assignment = dict(zip(head_vars, next(iter(rows))))
            atom = ic.positive_atoms[0]
            ground = tuple(
                assignment[t] if isinstance(t, Variable) else t.value
                for t in atom.args
            )
            current[atom.predicate].discard(ground)
            dirty = True
            break
        if not dirty:
            break
    return Database.from_rows(current)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_theorem_42_equivalence(seed):
    program, constraints = make_workload(seed)
    database = repair(make_database(seed), constraints)
    assert database_satisfies(constraints, database)
    report = optimize(program, constraints)
    assert report.complete  # all these ic's are fully local
    assert report.evaluate(database) == evaluate(program, database).query_rows()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_theorem_42_subset_on_arbitrary_databases(seed):
    program, constraints = make_workload(seed)
    database = make_database(seed)  # possibly inconsistent
    report = optimize(program, constraints)
    assert report.evaluate(database) <= evaluate(program, database).query_rows()
