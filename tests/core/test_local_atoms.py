"""E5 — Section 4.2: local order/negated atoms in ic's (Theorem 4.2)."""

import pytest

from repro.constraints.integrity import database_satisfies
from repro.core.local_atoms import (
    NonLocalConstraintError,
    prepare_local_atoms,
    quasi_local_report,
    split_rules_on_local_atoms,
)
from repro.core.rewrite import optimize
from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_constraints, parse_program
from repro.workloads.generators import good_path_database
from repro.workloads.programs import good_path_order_constraints


class TestCaseSplitting:
    def test_order_atom_split(self):
        program = parse_program("q(X, Y) :- step(X, Y).", query="q")
        ics = parse_constraints(":- step(X, Y), X >= Y.")
        plan = prepare_local_atoms(program, ics)
        rules = plan.program.rules_for("q")
        assert len(rules) == 2
        ops = {rule.order_atoms[0].op for rule in rules}
        assert ops == {">=", "<"}

    def test_negated_atom_split(self):
        program = parse_program("q(X) :- member(X).", query="q")
        ics = parse_constraints(":- member(X), not registered(X).")
        plan = prepare_local_atoms(program, ics)
        rules = plan.program.rules_for("q")
        assert len(rules) == 2
        polarities = set()
        for rule in rules:
            for literal in rule.relational_literals:
                if literal.predicate == "registered":
                    polarities.add(literal.positive)
        assert polarities == {True, False}

    def test_split_skipped_when_determined(self):
        program = parse_program("q(X, Y) :- step(X, Y), X < Y.", query="q")
        ics = parse_constraints(":- step(X, Y), X >= Y.")
        plan = prepare_local_atoms(program, ics)
        # X < Y already entails the negation of X >= Y: no split needed.
        assert len(plan.program.rules_for("q")) == 1

    def test_split_terminates_with_repeated_predicates(self):
        program = parse_program("q(X, Z) :- step(X, Y), step(Y, Z).", query="q")
        ics = parse_constraints(":- step(X, Y), X >= Y.")
        plan = prepare_local_atoms(program, ics)
        # Two occurrences -> up to four cases.
        assert 1 <= len(plan.program.rules_for("q")) <= 4

    def test_index_populated(self):
        program = parse_program("q(X, Y) :- step(X, Y).", query="q")
        ics = parse_constraints(":- step(X, Y), X >= Y.")
        plan = prepare_local_atoms(program, ics)
        assert plan.index
        assert len(plan.anchored) == 1

    def test_nonlocal_raises(self):
        program = parse_program("q(X) :- e(X, Y).", query="q")
        ics = parse_constraints(":- e(X, Y), e(Y, Z), X < Z.")
        with pytest.raises(NonLocalConstraintError):
            prepare_local_atoms(program, ics)


class TestSection3Example:
    """The paper's Section 3 rewriting: X >= 100 lands inside the
    recursive path rules and the below-threshold paths disappear."""

    def test_rewritten_shape(self):
        program, constraints = good_path_order_constraints()
        report = optimize(program, constraints)
        rewritten = report.program
        assert rewritten is not None
        path_rules = [
            rule
            for rule in rewritten.rules
            if any(l.predicate == "step" for l in rule.positive_literals)
        ]
        assert path_rules, "expected surviving step rules"
        for rule in path_rules:
            rendered = repr(rule)
            assert ">= 100" in rendered or "100 <=" in rendered

    def test_decoy_chains_never_touched(self):
        program, constraints = good_path_order_constraints()
        database = good_path_database(num_chains=2, chain_length=8, seed=1)
        assert database_satisfies(constraints, database)
        report = optimize(program, constraints)
        original = evaluate(program, database)
        rewritten = report.evaluation(database)
        assert rewritten.query_rows() == original.query_rows()
        # The optimized program derives strictly fewer intermediate facts:
        # it never builds paths starting below the threshold.
        assert rewritten.stats.facts_derived < original.stats.facts_derived

    def test_equivalence_with_negated_local_atoms(self):
        program = parse_program(
            """
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            safe(X, Y) :- source(X), reach(X, Y).
            """,
            query="safe",
        )
        ics = parse_constraints(":- edge(X, Y), not open_gate(X).")
        report = optimize(program, ics)
        database = Database.from_rows(
            {
                "edge": [(1, 2), (2, 3)],
                "open_gate": [(1,), (2,)],
                "source": [(1,)],
            }
        )
        assert database_satisfies(ics, database)
        assert report.evaluate(database) == evaluate(program, database).query_rows()


class TestQuasiLocal:
    def test_quasi_local_positive(self):
        # The order atom spans a single ic atom: complete mappings land
        # inside one rule node.
        program = parse_program("q(X, Y) :- step(X, Y), X >= Y.", query="q")
        ics = parse_constraints(":- step(X, Y), X >= Y.")
        findings = quasi_local_report(program, ics)
        assert findings and all(f.quasi_local for f in findings)

    def test_quasi_local_negative(self):
        # X < Z spans two ic atoms mapped at different depths of the
        # recursion: not quasi-local.
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- e(X, Z), t(Z, Y).
            """,
            query="t",
        )
        ics = parse_constraints(":- e(X, Y), e(Y, Z), X < Z.")
        findings = quasi_local_report(program, ics)
        assert findings
        assert any(not f.quasi_local for f in findings)
