"""Residue tests (CGM88 / paper Section 3, Example 3.1)."""

from repro.core.residues import (
    constrain_program,
    constrain_rule,
    injectable_conditions,
    residues_for_rule,
    rule_violates,
)
from repro.datalog.atoms import Literal, OrderAtom
from repro.datalog.parser import parse_constraints, parse_program, parse_rule
from repro.datalog.terms import Variable

X, Y = Variable("X"), Variable("Y")


class TestResidueEnumeration:
    def test_single_partial_mapping(self):
        rule = parse_rule("q(X) :- a(X, Y).")
        ic = parse_constraints(":- a(X, Y), c(Y).")[0]
        residues = residues_for_rule(rule, ic)
        assert len(residues) == 1
        assert len(residues[0].literals) == 1
        assert residues[0].literals[0].predicate == "c"

    def test_trivial_residue_included_on_demand(self):
        rule = parse_rule("q(X) :- a(X, Y).")
        ic = parse_constraints(":- a(X, Y), c(Y).")[0]
        residues = residues_for_rule(rule, ic, include_trivial=True)
        assert any(len(r.literals) == 2 for r in residues)

    def test_empty_residue_on_full_mapping(self):
        rule = parse_rule("q(X) :- a(X, Y), c(Y).")
        ic = parse_constraints(":- a(X, Y), c(Y).")[0]
        assert any(r.is_empty for r in residues_for_rule(rule, ic))

    def test_multiple_mappings(self):
        rule = parse_rule("q(X) :- a(X, Y), a(Y, X).")
        ic = parse_constraints(":- a(X, Y), c(Y).")[0]
        residues = residues_for_rule(rule, ic)
        images = {r.literals[0] for r in residues if len(r.literals) == 1}
        assert len(images) == 2  # c(Y) and c(X) under the two mappings

    def test_variable_capture_avoided(self):
        # The ic's variables collide with the rule's; renaming must keep
        # the unmapped variable distinct from the rule's X.
        rule = parse_rule("q(X) :- a(X, X).")
        ic = parse_constraints(":- a(Y, Y), c(X).")[0]
        residues = residues_for_rule(rule, ic)
        assert len(residues) == 1
        free = residues[0].free_variables()
        assert len(free) == 1
        assert next(iter(free)) != X


class TestViolationDetection:
    def test_plain_violation(self):
        rule = parse_rule("bad(X) :- a(X, Y), b(Y, X).")
        ic = parse_constraints(":- a(X, Y), b(Y, X).")[0]
        assert rule_violates(rule, ic)

    def test_no_violation_with_partial(self):
        rule = parse_rule("ok(X) :- a(X, Y).")
        ic = parse_constraints(":- a(X, Y), b(Y, X).")[0]
        assert not rule_violates(rule, ic)

    def test_order_entailment_required(self):
        ic = parse_constraints(":- step(X, Y), X >= Y.")[0]
        violating = parse_rule("bad(X) :- step(X, Y), X > Y.")
        assert rule_violates(violating, ic)
        fine = parse_rule("ok(X) :- step(X, Y), X < Y.")
        assert not rule_violates(fine, ic)

    def test_negated_atom_matching(self):
        ic = parse_constraints(":- member(X), not registered(X).")[0]
        violating = parse_rule("bad(X) :- member(X), not registered(X).")
        assert rule_violates(violating, ic)
        fine = parse_rule("ok(X) :- member(X), registered(X).")
        assert not rule_violates(fine, ic)


class TestInjection:
    def test_example_31(self):
        """Example 3.1: the residue Y <= X injects Y > X into r3."""
        program = parse_program(
            """
            path(X, Y) :- step(X, Y).
            path(X, Y) :- step(X, Z), path(Z, Y).
            goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
            """,
            query="goodPath",
        )
        ics = parse_constraints(":- startPoint(X), endPoint(Y), Y <= X.")
        optimized = constrain_program(program, ics)
        good_path_rule = optimized.rules_for("goodPath")[0]
        assert OrderAtom(Y, ">", X) in good_path_rule.order_atoms
        # The recursive path rules are untouched (no interaction).
        assert optimized.rules_for("path") == program.rules_for("path")

    def test_injectable_negated_edb(self):
        rule = parse_rule("q(X) :- a(X, Y).")
        ics = parse_constraints(":- a(X, Y), c(Y).")
        conditions = injectable_conditions(rule, ics)
        assert conditions == [Literal(parse_rule("q(X) :- c(Y).").body[0].atom, False)]

    def test_injectable_positive_from_negated_ic(self):
        rule = parse_rule("q(X) :- member(X).")
        ics = parse_constraints(":- member(X), not registered(X).")
        conditions = injectable_conditions(rule, ics)
        assert len(conditions) == 1
        assert conditions[0].positive and conditions[0].predicate == "registered"

    def test_entailed_condition_skipped(self):
        rule = parse_rule("q(X, Y) :- startPoint(X), endPoint(Y), Y > X.")
        ics = parse_constraints(":- startPoint(X), endPoint(Y), Y <= X.")
        assert injectable_conditions(rule, ics) == []

    def test_unsatisfiable_rule_removed(self):
        rule = parse_rule("bad(X) :- a(X, Y), b(Y, X).")
        ics = parse_constraints(":- a(X, Y), b(Y, X).")
        assert constrain_rule(rule, ics) is None

    def test_conditions_making_order_unsat_remove_rule(self):
        rule = parse_rule("q(X, Y) :- startPoint(X), endPoint(Y), Y < X.")
        ics = parse_constraints(":- startPoint(X), endPoint(Y), Y <= X.")
        # Residue injection adds Y > X, contradicting Y < X.
        assert constrain_rule(rule, ics) is None
