"""Edge cases of the rewriting pipeline: naming collisions, dedup,
multi-root bridging, options."""

from repro.core.rewrite import _canonical_rule_key, optimize
from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_constraints, parse_program, parse_rule


class TestCanonicalRuleKey:
    def test_alpha_equivalent_rules_collide(self):
        first = parse_rule("p(X, Y) :- e(X, Z), f(Z, Y).")
        second = parse_rule("p(A, B) :- e(A, C), f(C, B).")
        assert _canonical_rule_key(first) == _canonical_rule_key(second)

    def test_different_structure_distinct(self):
        first = parse_rule("p(X, Y) :- e(X, Z), f(Z, Y).")
        second = parse_rule("p(X, Y) :- e(X, Z), f(Y, Z).")
        assert _canonical_rule_key(first) != _canonical_rule_key(second)

    def test_order_atoms_and_negation_in_key(self):
        base = parse_rule("p(X) :- e(X, Y).")
        with_filter = parse_rule("p(X) :- e(X, Y), X < Y.")
        with_negation = parse_rule("p(X) :- e(X, Y), not f(X).")
        keys = {
            _canonical_rule_key(base),
            _canonical_rule_key(with_filter),
            _canonical_rule_key(with_negation),
        }
        assert len(keys) == 3

    def test_constants_in_key(self):
        first = parse_rule("p(X) :- e(X, 1).")
        second = parse_rule("p(X) :- e(X, 2).")
        assert _canonical_rule_key(first) != _canonical_rule_key(second)


class TestNamingCollisions:
    def test_existing_predicate_name_avoided(self):
        """A user predicate already named p_1 must not clash with the
        generated specialization names."""
        program = parse_program(
            """
            p(X, Y) :- a(X, Y).
            p(X, Y) :- b(X, Y).
            p(X, Y) :- a(X, Z), p(Z, Y).
            p(X, Y) :- b(X, Z), p(Z, Y).
            q(X, Y) :- p(X, Y), p_1(X).
            """,
            query="q",
        )
        constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
        report = optimize(program, constraints)
        assert report.program is not None
        database = Database.from_rows(
            {"a": [(1, 2)], "b": [(3, 1)], "p_1": [(1,), (3,)]}
        )
        assert report.evaluate(database) == evaluate(program, database).query_rows()


class TestOptions:
    def test_no_injection_keeps_equivalence(self):
        program = parse_program(
            """
            path(X, Y) :- step(X, Y).
            path(X, Y) :- step(X, Z), path(Z, Y).
            goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
            """,
            query="goodPath",
        )
        constraints = parse_constraints(":- startPoint(X), endPoint(Y), Y <= X.")
        report = optimize(program, constraints, inject_residues=False)
        database = Database.from_rows(
            {"step": [(1, 2), (2, 3)], "startPoint": [(1,)], "endPoint": [(3,)]}
        )
        assert report.evaluate(database) == {(1, 3)}
        # Without injection there is no Y > X anywhere.
        assert all(not rule.order_atoms for rule in report.program.rules)

    def test_no_propagation_keeps_equivalence(self):
        from repro.workloads.generators import good_path_database
        from repro.workloads.programs import good_path_order_constraints

        program, constraints = good_path_order_constraints()
        report = optimize(program, constraints, propagate_orders=False)
        database = good_path_database(seed=2)
        assert report.evaluate(database) == evaluate(program, database).query_rows()

    def test_multi_root_bridging(self):
        """Each surviving query adornment gets its own bridge rule."""
        program = parse_program(
            """
            p(X, Y) :- a(X, Y).
            p(X, Y) :- b(X, Y).
            p(X, Y) :- a(X, Z), p(Z, Y).
            p(X, Y) :- b(X, Z), p(Z, Y).
            """,
            query="p",
        )
        constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
        report = optimize(program, constraints)
        bridges = [
            rule
            for rule in report.program.rules
            if rule.head.predicate == "p" and len(rule.positive_literals) == 1
        ]
        assert len(bridges) == 3
