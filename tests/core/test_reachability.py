"""Satisfiability and query-reachability tests (Theorem 5.1, Section 2)."""

import pytest

from repro.core.reachability import (
    bounded_satisfiability,
    is_query_reachable,
    is_satisfiable,
    reachability_program,
    satisfiability_as_reachability,
)
from repro.datalog.parser import parse_atom, parse_constraints, parse_program
from repro.workloads.programs import ab_transitive_closure


class TestSatisfiability:
    def test_running_example_satisfiable(self):
        program, constraints = ab_transitive_closure()
        assert is_satisfiable(program, constraints)

    def test_forbidden_join_unsatisfiable(self):
        program = parse_program("q(X) :- a(X, Y), b(Y, Z).", query="q")
        constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert not is_satisfiable(program, constraints)

    def test_recursive_unsatisfiable(self):
        # Reaching the target requires crossing a forbidden join.
        program = parse_program(
            """
            p(X, Y) :- a(X, Y).
            p(X, Y) :- a(X, Z), p(Z, Y).
            q(X, Y) :- p(X, Z), b(Z, Y).
            """,
            query="q",
        )
        constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert not is_satisfiable(program, constraints)

    def test_no_constraints_always_satisfiable(self):
        program = parse_program("q(X) :- e(X, X).", query="q")
        assert is_satisfiable(program, [])

    def test_local_order_constraint(self):
        program = parse_program(
            "q(X) :- start(X), step(X, Y), X < 100, X >= Y.", query="q"
        )
        constraints = parse_constraints(":- step(X, Y), X >= Y.")
        assert not is_satisfiable(program, constraints)


class TestReachability:
    def test_reachable_atom(self):
        program, constraints = ab_transitive_closure()
        assert is_query_reachable(program, constraints, parse_atom("p(U, V)"))

    def test_marked_program_structure(self):
        program, constraints = ab_transitive_closure()
        marked = reachability_program(program, parse_atom("p(U, V)"))
        assert marked.query == "p__marked"
        assert len(marked.rules) > len(program.rules)

    def test_edb_atom_reachability(self):
        """Derivation trees have EDB goal nodes too (Section 2): both
        edge relations appear in derivations of p."""
        program, constraints = ab_transitive_closure()
        assert is_query_reachable(program, constraints, parse_atom("a(U, V)"))
        assert is_query_reachable(program, constraints, parse_atom("b(U, V)"))

    def test_unused_edb_atom_unreachable(self):
        program = parse_program("q(X) :- e(X, Y).", query="q")
        assert not is_query_reachable(program, [], parse_atom("f(U)"))

    def test_edb_atom_with_constants(self):
        program = parse_program("q(X) :- low(X), X < 10.", query="q")
        assert is_query_reachable(program, [], parse_atom("low(5)"))
        assert not is_query_reachable(program, [], parse_atom("low(50)"))

    def test_unreachable_subgoal(self):
        # r is defined but never appears under the query.
        program = parse_program(
            """
            q(X) :- a(X, Y).
            r(X) :- b(X, Y).
            """,
            query="q",
        )
        assert not is_query_reachable(program, [], parse_atom("r(U)"))

    def test_reachability_with_constants(self):
        program = parse_program(
            """
            p(X) :- low(X), X < 10.
            q(X) :- p(X).
            """,
            query="q",
        )
        assert is_query_reachable(program, [], parse_atom("p(U)"))
        # p(50) can never be part of a derivation: the rule requires < 10.
        assert not is_query_reachable(program, [], parse_atom("p(50)"))
        assert is_query_reachable(program, [], parse_atom("p(5)"))

    def test_round_trip_with_satisfiability(self):
        program, constraints = ab_transitive_closure()
        assert satisfiability_as_reachability(program, constraints, "p") == \
            is_satisfiable(program, constraints)

    def test_reachability_blocked_by_constraints(self):
        program = parse_program(
            """
            mid(Y) :- a(X, Y), b(Y, Z).
            q(Y) :- mid(Y).
            """,
            query="q",
        )
        constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert not is_query_reachable(program, constraints, parse_atom("mid(U)"))


class TestBoundedSatisfiability:
    def test_witness_found(self):
        program = parse_program("q(X) :- e(X, Y).", query="q")
        constraints = parse_constraints(":- e(X, Y), f(Z, W), X != W.")
        assert bounded_satisfiability(program, constraints, max_depth=2) is True

    def test_budget_exhausted_returns_none(self):
        # Unsatisfiable with a nonlocal constraint: search cannot prove it.
        program = parse_program("q(X) :- e(X, Y), f(Y, X).", query="q")
        constraints = parse_constraints(":- e(X, Y), f(Y, Z), X != X.")
        # The ic is vacuous (X != X never fires as written it's per
        # mapping) — actually X != X is unsatisfiable, so the ic never
        # fires and the query is satisfiable.
        assert bounded_satisfiability(program, constraints, max_depth=2) is True

    def test_recursive_witness(self):
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- e(X, Z), t(Z, Y).
            q(X, Y) :- t(X, Y), mark(Y).
            """,
            query="q",
        )
        constraints = parse_constraints(":- e(X, Y), mark(X), X != Y.")
        result = bounded_satisfiability(program, constraints, max_depth=3)
        assert result is True

    def test_unsat_within_budget_returns_none(self):
        program = parse_program("q(X) :- a(X, Y), b(Y, X).", query="q")
        constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert bounded_satisfiability(program, constraints, max_depth=3) is None
