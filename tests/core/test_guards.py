"""Resource-guard behaviour: the doubly-exponential blow-ups fail loudly."""

import pytest

from repro.core.adornments import compute_adornments
from repro.core.emptiness import EmptinessTooLargeError, rule_satisfiable_wrt
from repro.core.rewrite import optimize
from repro.datalog.parser import parse_constraints, parse_program, parse_rule


class TestAdornmentGuard:
    def test_max_adornments_enforced(self):
        # Three interacting colors exceed a max of 2 adorned variants.
        names = ["e0", "e1", "e2"]
        rules = []
        for name in names:
            rules.append(f"p(X, Y) :- {name}(X, Y).")
            rules.append(f"p(X, Y) :- {name}(X, Z), p(Z, Y).")
        program = parse_program("\n".join(rules), query="p")
        constraints = parse_constraints(
            ":- e0(X, Y), e1(Y, Z). :- e1(X, Y), e2(Y, Z)."
        )
        with pytest.raises(RuntimeError):
            compute_adornments(program, constraints, max_adornments=2)
        # The same limit flows through optimize().
        with pytest.raises(RuntimeError):
            optimize(program, constraints, max_adornments=2)
        # And a generous limit succeeds.
        assert optimize(program, constraints, max_adornments=64).satisfiable


class TestRepairGuard:
    def test_repair_budget_enforced(self):
        # A repair chain longer than the budget.
        rule = parse_rule("q(X) :- p0(X).")
        lines = []
        for i in range(5):
            lines.append(f":- p{i}(X), not p{i + 1}(X).")
        constraints = parse_constraints("\n".join(lines))
        assert rule_satisfiable_wrt(rule, constraints, max_repair_facts=10)
        with pytest.raises(EmptinessTooLargeError):
            rule_satisfiable_wrt(rule, constraints, max_repair_facts=2)
