"""F1: exact reproduction of Figure 1 (the final query tree) and of the
bottom-up adornments p1, p2, p3 with rules s1-s6."""

from repro.core.adornments import compute_adornments
from repro.core.querytree import build_query_tree
from repro.core.rewrite import optimize
from repro.datalog.parser import parse_constraints, parse_program
from repro.workloads.programs import ab_transitive_closure


def setup_module(module):
    module.program, module.constraints = ab_transitive_closure()
    module.result = compute_adornments(module.program, module.constraints)


class TestBottomUpPhase:
    def test_three_adornments(self):
        """The paper derives exactly p1, p2 and p3."""
        assert len(result.adornments["p"]) == 3

    def test_adornment_residues(self):
        """p1 = {b unmapped}, p2 = {a unmapped}, p3 = both triplets."""
        summaries = []
        for adornment in result.adornments["p"]:
            nontrivial = [t for t in adornment if not t.is_trivial()]
            summaries.append(sorted(tuple(sorted(t.unmapped)) for t in nontrivial))
        assert summaries == [[(1,)], [(0,)], [(0,), (1,)]]

    def test_six_adorned_rules(self):
        """P1 consists of s1 .. s6."""
        assert len(result.adorned_rules) == 6

    def test_rule_shapes_match_paper(self):
        names = {}
        for index, adornment in enumerate(result.adornments["p"], start=1):
            names[adornment] = f"p{index}"
        shapes = set()
        for adorned in result.adorned_rules:
            head = names[adorned.head_adornment]
            body = []
            for literal, sub in zip(
                adorned.rule.positive_literals, adorned.subgoal_adornments
            ):
                body.append(literal.predicate if sub is None else names[sub])
            shapes.add((head, tuple(body)))
        assert shapes == {
            ("p1", ("a",)),            # s1
            ("p2", ("b",)),            # s2
            ("p1", ("a", "p1")),       # s3
            ("p2", ("b", "p2")),       # s4
            ("p3", ("b", "p1")),       # s5
            ("p3", ("b", "p3")),       # s6
        }

    def test_inconsistent_combinations_recorded(self):
        """Using p2 in r3 (and p3 in r3) yields empty residues."""
        assert len(result.inconsistencies) >= 2


class TestTopDownPhase:
    def test_forest_has_three_roots(self):
        tree = build_query_tree(result)
        assert len(tree.roots) == 3
        assert all(root.productive and root.reachable for root in tree.roots)

    def test_labels_equal_adornments(self):
        """In this example the labels remain identical to the adornments
        (after removing redundant triplets, per the paper's remark)."""
        from repro.core.adornments import prune_redundant

        tree = build_query_tree(result)
        for goal in tree.all_goal_nodes():
            if goal.is_edb or goal.reference is not None:
                continue
            assert prune_redundant(goal.label) == prune_redundant(goal.adornment)

    def test_render_mentions_residues(self):
        tree = build_query_tree(result)
        text = tree.render()
        assert "b(Y, Z)" in text and "a(X, Y)" in text


class TestRewriting:
    def test_rewritten_program_shape(self):
        report = optimize(program, constraints)
        rewritten = report.program
        assert rewritten is not None
        # 6 adorned rules + 3 query bridges.
        assert len(rewritten.rules) == 9
        # No rule joins an a-edge onto a b-closure: the a-then-b pattern
        # is gone.
        for rule in rewritten.rules:
            predicates = [lit.predicate for lit in rule.positive_literals]
            if "a" in predicates:
                assert all(not p.startswith("p_2") for p in predicates)

    def test_complete_incorporation_flag(self):
        report = optimize(program, constraints)
        assert report.complete and report.satisfiable
