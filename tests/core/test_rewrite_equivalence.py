"""E4 — Theorem 4.1: on every database satisfying the ic's, the original
and rewritten programs compute the same query relation.

Deterministic cases cover the paper's examples; a hypothesis property
sweeps random consistent databases for each workload family.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.integrity import database_satisfies
from repro.core.rewrite import optimize
from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_constraints, parse_program
from repro.workloads.generators import (
    ab_database,
    flight_database,
    good_path_bidirectional_database,
    good_path_database,
    same_generation_database,
    taint_database,
)
from repro.workloads.programs import (
    ab_transitive_closure,
    flight_routes,
    good_path,
    good_path_order_constraints,
    same_generation,
    taint_analysis,
)

WORKLOADS = {
    "good_path": (good_path, lambda seed: good_path_database(seed=seed)),
    "good_path_bidir": (
        good_path,
        lambda seed: good_path_bidirectional_database(seed=seed),
    ),
    "good_path_order": (
        good_path_order_constraints,
        lambda seed: good_path_database(seed=seed),
    ),
    "ab": (ab_transitive_closure, lambda seed: ab_database(seed=seed)),
    "same_generation": (
        same_generation,
        lambda seed: same_generation_database(seed=seed % 3 + 2, fanout=2),
    ),
    "flights": (flight_routes, lambda seed: flight_database(seed=seed)),
    "taint": (taint_analysis, lambda seed: taint_database(seed=seed)),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_equivalence_on_canonical_database(name):
    factory, dbf = WORKLOADS[name]
    program, constraints = factory()
    database = dbf(0)
    assert database_satisfies(constraints, database)
    report = optimize(program, constraints)
    original = evaluate(program, database).query_rows()
    assert report.evaluate(database) == original


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_equivalence_random_databases(name, seed):
    factory, dbf = WORKLOADS[name]
    program, constraints = factory()
    database = dbf(seed)
    assert database_satisfies(constraints, database)
    report = optimize(program, constraints)
    original = evaluate(program, database).query_rows()
    assert report.evaluate(database) == original


class TestRandomEdgePrograms:
    """Random consistent databases for the a/b family built fact by fact."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_ab_random_consistent_facts(self, seed):
        program, constraints = ab_transitive_closure()
        rng = random.Random(seed)
        a_edges, b_edges = set(), set()
        for _ in range(rng.randint(0, 14)):
            kind = rng.choice("ab")
            edge = (rng.randint(0, 5), rng.randint(0, 5))
            if kind == "a":
                a_edges.add(edge)
            else:
                b_edges.add(edge)
        # Repair to consistency: drop b-edges that start where an a-edge ends.
        a_targets = {y for _, y in a_edges}
        b_edges = {(x, y) for x, y in b_edges if x not in a_targets}
        database = Database.from_rows({"a": a_edges, "b": b_edges})
        assert database_satisfies(constraints, database)
        report = optimize(program, constraints)
        assert report.evaluate(database) == evaluate(program, database).query_rows()


class TestRewritingNeverOverproduces:
    """Even on *inconsistent* databases the rewriting is sound in one
    direction: it derives a subset of the original answers (it only
    removed derivations)."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100_000))
    def test_subset_on_arbitrary_databases(self, seed):
        program, constraints = ab_transitive_closure()
        rng = random.Random(seed)
        database = Database.from_rows(
            {
                "a": {(rng.randint(0, 4), rng.randint(0, 4)) for _ in range(6)},
                "b": {(rng.randint(0, 4), rng.randint(0, 4)) for _ in range(6)},
            }
        )
        report = optimize(program, constraints)
        assert report.evaluate(database) <= evaluate(program, database).query_rows()


class TestUnsatisfiableQueries:
    def test_query_requiring_forbidden_join(self):
        program = parse_program("q(X) :- a(X, Y), b(Y, Z).", query="q")
        constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
        report = optimize(program, constraints)
        assert not report.satisfiable
        assert report.program is None
        assert report.evaluate(Database.from_rows({"a": [(1, 2)]})) == frozenset()

    def test_order_contradiction(self):
        program = parse_program(
            "q(X) :- start(X), step(X, Y), X < 100, X >= Y.", query="q"
        )
        constraints = parse_constraints(":- step(X, Y), X >= Y.")
        report = optimize(program, constraints)
        assert not report.satisfiable


class TestReportSurface:
    def test_summary_strings(self):
        program, constraints = ab_transitive_closure()
        report = optimize(program, constraints)
        text = report.summary()
        assert "original rules: 4" in text
        assert "query satisfiable: True" in text

    def test_render_tree_nonempty(self):
        program, constraints = ab_transitive_closure()
        report = optimize(program, constraints)
        assert "rule" in report.render_tree()

    def test_requires_query(self):
        program = parse_program("p(X) :- e(X).")
        with pytest.raises(ValueError):
            optimize(program, [])
