"""Order-propagation (LMSS93-style preprocessing) tests."""

from repro.core.order_propagation import normalize_rule, propagate_order_constraints
from repro.datalog.atoms import OrderAtom
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.terms import Constant, Variable


class TestNormalizeRule:
    def test_unsatisfiable_rule_dropped(self):
        assert normalize_rule(parse_rule("q(X) :- e(X, Y), X < Y, Y < X.")) is None

    def test_forced_equality_substituted(self):
        rule = normalize_rule(parse_rule("q(X, Y) :- e(X, Y), X <= Y, Y <= X."))
        assert rule is not None
        assert rule.head.args[0] == rule.head.args[1]

    def test_constant_equality_substituted(self):
        rule = normalize_rule(parse_rule("q(X) :- e(X), X = 5."))
        assert rule is not None
        assert rule.head.args[0] == Constant(5)

    def test_untouched_when_clean(self):
        rule = parse_rule("q(X) :- e(X, Y), X < Y.")
        assert normalize_rule(rule) == rule


class TestPropagation:
    def test_projection_of_simple_filter(self):
        program = parse_program("q(X) :- e(X), X > 10.", query="q")
        outcome = propagate_order_constraints(program)
        projection = outcome.projection("q")
        assert projection is not None
        placeholder = Variable("__a0")
        assert any(
            atom.normalized() == OrderAtom(placeholder, ">", Constant(10)).normalized()
            for atom in projection
        )

    def test_context_unsat_rule_pruned(self):
        program = parse_program(
            """
            base(X) :- e(X), X > 10.
            q(X) :- base(X), X < 5.
            """,
            query="q",
        )
        outcome = propagate_order_constraints(program)
        assert not outcome.program.rules_for("q")
        assert outcome.projection("q") is None

    def test_projection_intersects_across_rules(self):
        program = parse_program(
            """
            q(X) :- e(X), X > 10.
            q(X) :- f(X), X > 3.
            """,
            query="q",
        )
        outcome = propagate_order_constraints(program)
        projection = outcome.projection("q")
        placeholder = Variable("__a0")
        # Only the weaker bound X > 3 survives the meet.
        atoms = {a.normalized() for a in projection}
        assert OrderAtom(Constant(3), "<", placeholder).normalized() in atoms
        assert OrderAtom(Constant(10), "<", placeholder).normalized() not in atoms

    def test_push_into_callers(self):
        program = parse_program(
            """
            base(X) :- e(X), X > 10.
            q(X, Y) :- base(X), g(X, Y).
            """,
            query="q",
        )
        outcome = propagate_order_constraints(program, push=True)
        q_rule = outcome.program.rules_for("q")[0]
        assert any(
            atom.normalized() == OrderAtom(Constant(10), "<", Variable("X")).normalized()
            for atom in q_rule.order_atoms
        )

    def test_no_push_option(self):
        program = parse_program(
            """
            base(X) :- e(X), X > 10.
            q(X, Y) :- base(X), g(X, Y).
            """,
            query="q",
        )
        outcome = propagate_order_constraints(program, push=False)
        assert not outcome.program.rules_for("q")[0].order_atoms

    def test_recursive_fixpoint_terminates(self):
        program = parse_program(
            """
            up(X, Y) :- e(X, Y), X < Y.
            up(X, Y) :- e(X, Z), X < Z, up(Z, Y).
            """,
            query="up",
        )
        outcome = propagate_order_constraints(program)
        projection = outcome.projection("up")
        assert projection is not None
        # Every up-fact satisfies arg0 < arg1.
        atoms = {a.normalized() for a in projection}
        assert OrderAtom(Variable("__a0"), "<", Variable("__a1")).normalized() in atoms

    def test_dropped_rules_reported(self):
        program = parse_program(
            """
            q(X) :- e(X), X < 3, X > 5.
            q(X) :- f(X).
            """,
            query="q",
        )
        outcome = propagate_order_constraints(program)
        assert len(outcome.dropped_rules) == 1
        assert len(outcome.program.rules) == 1
