"""DOT export tests."""

from repro.core.adornments import compute_adornments
from repro.core.querytree import build_query_tree
from repro.core.visualize import dependency_dot, querytree_dot
from repro.datalog.parser import parse_program
from repro.workloads.programs import ab_transitive_closure


class TestQuerytreeDot:
    def setup_method(self):
        program, constraints = ab_transitive_closure()
        self.tree = build_query_tree(compute_adornments(program, constraints))

    def test_valid_digraph_structure(self):
        dot = querytree_dot(self.tree)
        assert dot.startswith("digraph querytree {")
        assert dot.endswith("}")
        assert dot.count("[") == dot.count("]")

    def test_roots_double_bordered(self):
        dot = querytree_dot(self.tree)
        assert dot.count("peripheries=2") == len(self.tree.roots)

    def test_edb_leaves_filled(self):
        dot = querytree_dot(self.tree)
        assert "#eef6ee" in dot

    def test_reference_edges_dotted(self):
        dot = querytree_dot(self.tree)
        assert "style=dotted" in dot

    def test_labels_included_on_demand(self):
        plain = querytree_dot(self.tree)
        labeled = querytree_dot(self.tree, include_labels=True)
        assert len(labeled) > len(plain)
        assert "b(Y, Z)" in labeled

    def test_rule_text_present(self):
        dot = querytree_dot(self.tree)
        assert "p(V0, V1) :- a(V0, V1)." in dot.replace('\\"', '"')


class TestDependencyDot:
    def test_structure(self):
        program = parse_program(
            "p(X) :- e(X), not f(X). q(X) :- p(X).", query="q"
        )
        dot = dependency_dot(program)
        assert '"q" [shape=doublecircle]' in dot
        assert '"p" [shape=circle]' in dot
        assert '"e" [shape=box' in dot
        assert '"q" -> "p" [style=solid]' in dot
        assert '"p" -> "f" [style=dashed]' in dot

    def test_deduplicated_edges(self):
        program = parse_program("p(X) :- e(X, Y), e(Y, X).")
        dot = dependency_dot(program)
        assert dot.count('"p" -> "e"') == 1
