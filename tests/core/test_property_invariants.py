"""Property-based invariants over random programs, ic's and databases.

Random family: transitive-closure-style programs over k binary edge
colors with random extra projection rules, plain two-atom ic's, and
random databases *repaired* to consistency by deleting violation
supports.  Checked invariants:

* Theorem 4.1 equivalence on consistent databases;
* structural adornment invariants (trivial triplet present, frontier
  variables covered by sigma, inconsistent combinations excluded);
* query-tree structural invariants (references resolve to expanded
  nodes, surviving rule nodes have surviving subgoals);
* agreement between the decision procedures (evaluation witnesses imply
  satisfiability; emptiness implies empty evaluation; containment
  implies answer inclusion).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.integrity import IntegrityConstraint, database_satisfies
from repro.core.adornments import compute_adornments, trivial_triplet
from repro.core.emptiness import is_empty_program
from repro.core.querytree import build_query_tree
from repro.core.reachability import is_satisfiable
from repro.core.rewrite import optimize
from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

COLORS = ["a", "b", "c"]


def make_program(rng: random.Random) -> Program:
    """A random closure program over 2-3 edge colors."""
    colors = COLORS[: rng.randint(2, 3)]
    lines = []
    for color in colors:
        lines.append(f"p(X, Y) :- {color}(X, Y).")
    for color in colors:
        if rng.random() < 0.8:
            lines.append(f"p(X, Y) :- {color}(X, Z), p(Z, Y).")
    lines.append("q(X, Y) :- p(X, Y).")
    if rng.random() < 0.5:
        lines.append(f"q(X, Y) :- p(X, Z), {rng.choice(colors)}(Z, Y).")
    return parse_program("\n".join(lines), query="q")


def make_constraints(rng: random.Random, program: Program) -> list[IntegrityConstraint]:
    """Random plain two-atom ic's over the program's edge predicates."""
    predicates = sorted(program.edb_predicates)
    constraints = []
    for _ in range(rng.randint(1, 2)):
        first, second = rng.choice(predicates), rng.choice(predicates)
        X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
        shape = rng.randrange(3)
        if shape == 0:  # chained: first then second
            body = (Literal(Atom(first, (X, Y))), Literal(Atom(second, (Y, Z))))
        elif shape == 1:  # same source
            body = (Literal(Atom(first, (X, Y))), Literal(Atom(second, (X, Z))))
        else:  # loop
            body = (Literal(Atom(first, (X, X))),)
        ic = IntegrityConstraint(body)
        if ic not in constraints:
            constraints.append(ic)
    return constraints


def make_database(rng: random.Random, program: Program) -> Database:
    db = Database()
    for predicate in sorted(program.edb_predicates):
        for _ in range(rng.randint(0, 8)):
            db.add_row(predicate, (rng.randint(0, 4), rng.randint(0, 4)))
    return db


def repair(database: Database, constraints: list[IntegrityConstraint]) -> Database:
    """Delete supports of violations until the database is consistent.

    Plain ic's are monotone, so deletion always terminates.
    """
    current = {
        predicate: set(database.relation(predicate, 2))
        for predicate in database.predicates()
    }
    changed = True
    while changed:
        changed = False
        db = Database.from_rows(current)
        for ic in constraints:
            witness = _violation_witness(ic, db)
            if witness is not None:
                predicate, row = witness
                current[predicate].discard(row)
                changed = True
                break
    return Database.from_rows(current)


def _violation_witness(ic: IntegrityConstraint, database: Database):
    head_vars = tuple(sorted(ic.variables(), key=lambda v: v.name))
    rule = Rule(Atom("__w__", head_vars), ic.body)
    program = Program([rule], "__w__", validate=False)
    rows = evaluate(program, database).rows("__w__")
    for row in rows:
        assignment = dict(zip(head_vars, row))
        atom = ic.positive_atoms[0]
        ground = tuple(
            assignment[t] if isinstance(t, Variable) else t.value for t in atom.args
        )
        return atom.predicate, ground
    return None


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_theorem_41_equivalence(seed):
    rng = random.Random(seed)
    program = make_program(rng)
    constraints = make_constraints(rng, program)
    database = repair(make_database(rng, program), constraints)
    assert database_satisfies(constraints, database)
    report = optimize(program, constraints)
    assert report.evaluate(database) == evaluate(program, database).query_rows()


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_adornment_invariants(seed):
    rng = random.Random(seed)
    program = make_program(rng)
    constraints = make_constraints(rng, program)
    result = compute_adornments(program, constraints)
    for predicate, adornments in result.adornments.items():
        for adornment in adornments:
            for ic_index, ic in enumerate(constraints):
                assert trivial_triplet(ic_index, ic) in adornment
            for triplet in adornment:
                # No inconsistent triplet survives into an adornment.
                assert triplet.unmapped
    for adorned in result.adorned_rules:
        # Registered head adornments only.
        key = (adorned.rule.head.predicate, adorned.head_adornment)
        assert key in result.adornment_ids
        for derivation in adorned.derivations:
            assert derivation.unmapped  # inconsistent combos excluded


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_query_tree_invariants(seed):
    rng = random.Random(seed)
    program = make_program(rng)
    constraints = make_constraints(rng, program)
    tree = build_query_tree(compute_adornments(program, constraints))
    for goal in tree.all_goal_nodes():
        resolved = goal.resolved()
        if goal.reference is not None:
            # References point to expanded nodes of the same class.
            assert resolved.class_key() == goal.class_key()
            assert not goal.children
        for rule_node in goal.children:
            if rule_node.productive and rule_node.reachable:
                for subgoal in rule_node.subgoals:
                    target = subgoal.resolved()
                    assert target.is_edb or (target.productive and target.reachable)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_evaluation_witness_implies_satisfiable(seed):
    rng = random.Random(seed)
    program = make_program(rng)
    constraints = make_constraints(rng, program)
    database = repair(make_database(rng, program), constraints)
    rows = evaluate(program, database).query_rows()
    if rows:
        assert is_satisfiable(program, constraints)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 100_000))
def test_emptiness_implies_empty_evaluation(seed):
    rng = random.Random(seed)
    program = make_program(rng)
    constraints = make_constraints(rng, program)
    if not is_empty_program(program, constraints):
        return
    database = repair(make_database(rng, program), constraints)
    result = evaluate(program, database)
    for predicate in program.idb_predicates:
        assert not result.rows(predicate)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_rewriting_subset_on_arbitrary_databases(seed):
    """Soundness direction that needs no consistency: P' ⊆ P always."""
    rng = random.Random(seed)
    program = make_program(rng)
    constraints = make_constraints(rng, program)
    database = make_database(rng, program)  # possibly inconsistent
    report = optimize(program, constraints)
    assert report.evaluate(database) <= evaluate(program, database).query_rows()
