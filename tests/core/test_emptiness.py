"""E7 — Proposition 5.2 and Theorem 5.2: program emptiness in all four
program/ic classes."""

import pytest

from repro.core.emptiness import (
    is_empty_program,
    rule_satisfiable_wrt,
    unsatisfiable_initialization_rules,
)
from repro.datalog.parser import parse_constraints, parse_program, parse_rule


class TestRuleSatisfiabilityPlain:
    """Class 1: {not}-program, plain ic's (NP)."""

    def test_plain_rule_no_constraints(self):
        assert rule_satisfiable_wrt(parse_rule("q(X) :- e(X, Y)."), [])

    def test_violating_rule(self):
        rule = parse_rule("q(X) :- a(X, Y), b(Y, X).")
        ics = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert not rule_satisfiable_wrt(rule, ics)

    def test_non_violating_rule(self):
        rule = parse_rule("q(X) :- a(X, Y).")
        ics = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert rule_satisfiable_wrt(rule, ics)

    def test_negated_body_atom_consistent(self):
        rule = parse_rule("q(X) :- a(X, Y), not b(Y, X).")
        ics = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert rule_satisfiable_wrt(rule, ics)

    def test_negated_body_atom_clashing_with_positive(self):
        rule = parse_rule("q(X) :- a(X, X), not a(X, X).")
        assert not rule_satisfiable_wrt(rule, [])

    def test_repeated_variable_ic(self):
        rule = parse_rule("q(X) :- e(X, X).")
        ics = parse_constraints(":- e(X, X).")
        assert not rule_satisfiable_wrt(rule, ics)
        # Distinct variables escape the ic.
        assert rule_satisfiable_wrt(parse_rule("q(X) :- e(X, Y)."), ics)


class TestRuleSatisfiabilityOrder:
    """Class 3: {theta,not}-program, {theta}-ic's (Pi2p complement)."""

    def test_order_rule_unsat_by_itself(self):
        assert not rule_satisfiable_wrt(
            parse_rule("q(X) :- e(X, Y), X < Y, Y < X."), []
        )

    def test_theta_ic_blocks_entailed_shape(self):
        rule = parse_rule("q(X) :- step(X, Y), X > Y.")
        ics = parse_constraints(":- step(X, Y), X >= Y.")
        assert not rule_satisfiable_wrt(rule, ics)

    def test_theta_ic_allows_other_linearization(self):
        rule = parse_rule("q(X) :- step(X, Y).")
        ics = parse_constraints(":- step(X, Y), X >= Y.")
        assert rule_satisfiable_wrt(rule, ics)

    def test_theta_ics_cover_all_linearizations(self):
        rule = parse_rule("q(X) :- step(X, Y).")
        ics = parse_constraints(
            ":- step(X, Y), X >= Y. :- step(X, Y), X < Y."
        )
        assert not rule_satisfiable_wrt(rule, ics)

    def test_constants_in_order_ics(self):
        rule = parse_rule("q(X) :- v(X), X > 10.")
        ics = parse_constraints(":- v(X), X > 5.")
        assert not rule_satisfiable_wrt(rule, ics)
        ics2 = parse_constraints(":- v(X), X > 20.")
        assert rule_satisfiable_wrt(rule, ics2)

    def test_merging_required(self):
        # Only X = Y instantiations survive the ic; the rule is still
        # satisfiable by merging.
        rule = parse_rule("q(X) :- e(X, Y).")
        ics = parse_constraints(":- e(X, Y), X != Y.")
        assert rule_satisfiable_wrt(rule, ics)

    def test_merging_blocked_by_rule_order_atom(self):
        rule = parse_rule("q(X) :- e(X, Y), X < Y.")
        ics = parse_constraints(":- e(X, Y), X != Y.")
        assert not rule_satisfiable_wrt(rule, ics)


class TestRuleSatisfiabilityNegatedIcs:
    """Classes 2 and 4: {not}-ic's (repair search, EXPSPACE bound)."""

    def test_repair_with_supporting_fact(self):
        rule = parse_rule("q(X) :- member(X).")
        ics = parse_constraints(":- member(X), not registered(X).")
        # Add registered(c) to repair: satisfiable.
        assert rule_satisfiable_wrt(rule, ics)

    def test_repair_blocked_by_rule_negation(self):
        rule = parse_rule("q(X) :- member(X), not registered(X).")
        ics = parse_constraints(":- member(X), not registered(X).")
        assert not rule_satisfiable_wrt(rule, ics)

    def test_cascading_repairs(self):
        rule = parse_rule("q(X) :- member(X).")
        ics = parse_constraints(
            """
            :- member(X), not registered(X).
            :- registered(X), not vetted(X).
            """
        )
        assert rule_satisfiable_wrt(rule, ics)

    def test_cascading_repairs_blocked(self):
        rule = parse_rule("q(X) :- member(X), not vetted(X).")
        ics = parse_constraints(
            """
            :- member(X), not registered(X).
            :- registered(X), not vetted(X).
            """
        )
        assert not rule_satisfiable_wrt(rule, ics)

    def test_combined_order_and_negation(self):
        rule = parse_rule("q(X) :- v(X), X > 5.")
        ics = parse_constraints(":- v(X), not w(X), X > 3.")
        assert rule_satisfiable_wrt(rule, ics)  # add w(c)

    def test_combined_unsatisfiable(self):
        rule = parse_rule("q(X) :- v(X), not w(X), X > 5.")
        ics = parse_constraints(":- v(X), not w(X), X > 3.")
        assert not rule_satisfiable_wrt(rule, ics)


class TestProgramEmptiness:
    def test_proposition_52(self):
        """Emptiness is decided by the initialization rules alone, even
        for recursive programs."""
        program = parse_program(
            """
            p(X, Y) :- a(X, Y), b(Y, X).
            p(X, Y) :- a(X, Z), p(Z, Y).
            """,
            query="p",
        )
        ics = parse_constraints(":- a(X, Y), b(Y, Z).")
        # The only initialization rule violates the ic; the recursive rule
        # can then never fire either.
        assert is_empty_program(program, ics)

    def test_nonempty_program(self):
        program = parse_program(
            """
            p(X, Y) :- a(X, Y).
            p(X, Y) :- a(X, Z), p(Z, Y).
            """,
            query="p",
        )
        ics = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert not is_empty_program(program, ics)

    def test_unsatisfiable_initialization_rules_listing(self):
        program = parse_program(
            """
            p(X) :- a(X, Y), b(Y, X).
            q(X) :- a(X, Y).
            """,
        )
        ics = parse_constraints(":- a(X, Y), b(Y, Z).")
        bad = unsatisfiable_initialization_rules(program, ics)
        assert len(bad) == 1
        assert bad[0].head.predicate == "p"

    def test_program_without_rules_is_empty(self):
        program = parse_program("p(X) :- a(X, Y), b(Y, X).")
        ics = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert is_empty_program(program, ics)
