"""E6 — Proposition 5.1: program-in-UCQ containment and its reductions."""

import pytest

from repro.core.containment import (
    containment_as_satisfiability,
    program_contained_in_ucq,
    satisfiability_as_noncontainment,
)
from repro.core.reachability import is_satisfiable
from repro.cq.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.parser import parse_constraints, parse_program, parse_rule
from repro.workloads.programs import ab_transitive_closure


def cq(source: str) -> ConjunctiveQuery:
    return ConjunctiveQuery.from_rule(parse_rule(source))


TC = parse_program(
    """
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, Z), t(Z, Y).
    """,
    query="t",
)


class TestProgramInUcq:
    def test_tc_contained_in_edge_from_source(self):
        # Every t-path starts with an edge out of X.
        union = UnionOfConjunctiveQueries((cq("t(X, Y) :- e(X, Z)."),))
        assert program_contained_in_ucq(TC, union)

    def test_tc_not_contained_in_single_edge(self):
        union = UnionOfConjunctiveQueries((cq("t(X, Y) :- e(X, Y)."),))
        assert not program_contained_in_ucq(TC, union)

    def test_tc_contained_in_edge_union(self):
        # ... but edges-or-two-step-prefixes also fails (paths can be longer),
        # while edge-out-of-X OR edge-into-Y covers everything.
        union = UnionOfConjunctiveQueries(
            (cq("t(X, Y) :- e(X, Z)."), cq("t(X, Y) :- e(Z, Y)."))
        )
        assert program_contained_in_ucq(TC, union)

    def test_nonrecursive_plain_case(self):
        program = parse_program("q(X) :- a(X, Y), b(Y, X).", query="q")
        union = UnionOfConjunctiveQueries((cq("q(X) :- a(X, Y)."),))
        assert program_contained_in_ucq(program, union)
        union2 = UnionOfConjunctiveQueries((cq("q(X) :- a(X, X)."),))
        assert not program_contained_in_ucq(program, union2)

    def test_head_mismatch_rejected(self):
        union = UnionOfConjunctiveQueries((cq("other(X, Y) :- e(X, Y)."),))
        with pytest.raises(ValueError):
            program_contained_in_ucq(TC, union)

    def test_sequence_argument_accepted(self):
        assert program_contained_in_ucq(TC, [cq("t(X, Y) :- e(X, Z).")])


class TestReductionStructure:
    def test_marked_program(self):
        union = UnionOfConjunctiveQueries((cq("t(X, Y) :- e(X, Z)."),))
        marked, ics = containment_as_satisfiability(TC, union)
        assert marked.query == "__ans__"
        assert len(ics) == 1
        # The generated ic carries the marker atoms.
        assert {"__g0__", "__g1__"} <= ics[0].predicates()

    def test_roundtrip_direction_a(self):
        """Satisfiability of the running example equals non-containment of
        its Proposition 5.1 companion."""
        program, constraints = ab_transitive_closure()
        extended, union = satisfiability_as_noncontainment(program, constraints)
        assert is_satisfiable(program, constraints) == (
            not program_contained_in_ucq(extended, union)
        )

    def test_roundtrip_direction_a_unsatisfiable(self):
        program = parse_program("q(X) :- a(X, Y), b(Y, Z).", query="q")
        constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
        extended, union = satisfiability_as_noncontainment(program, constraints)
        assert not is_satisfiable(program, constraints)
        assert program_contained_in_ucq(extended, union)

    def test_cross_validation_both_reductions(self):
        """non-containment -> satisfiability -> non-containment closes."""
        union = UnionOfConjunctiveQueries((cq("t(X, Y) :- e(X, Y)."),))
        marked, ics = containment_as_satisfiability(TC, union)
        # t is not contained in single-edge, so __ans__ must be satisfiable.
        assert is_satisfiable(marked, ics)
