"""The compiled slot-based plan module: orderings, steps, projections."""

import pytest

from repro.datalog.database import Database
from repro.datalog.evaluation import EvaluationStats, evaluate
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.plan import (
    SELECTIVITY,
    compile_rule,
    order_body_cost,
    order_body_greedy,
)


def _literal_names(ordered):
    return [item.predicate for item, _ in ordered if hasattr(item, "predicate")]


class TestOrderings:
    def test_greedy_puts_delta_first(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).")
        ordered = order_body_greedy(rule, delta_index=1)
        assert ordered[0][1] is True  # the delta pair leads
        assert ordered[0][0].predicate == "p"

    def test_greedy_flushes_filters_as_soon_as_bound(self):
        rule = parse_rule("p(X, Y) :- e(X, Z), X < Z, f(Z, Y).")
        ordered = order_body_greedy(rule, None)
        kinds = [getattr(item, "predicate", "filter") for item, _ in ordered]
        assert kinds == ["e", "filter", "f"]

    def test_cost_prefers_small_relations(self):
        rule = parse_rule("p(X, Y) :- big(X, Z), small(Z, Y).")
        sizes = {"big": 1000.0, "small": 3.0}
        ordered = order_body_cost(rule, None, lambda lit: sizes[lit.predicate])
        assert _literal_names(ordered) == ["small", "big"]

    def test_cost_counts_bound_positions(self):
        # small binds Z; big's probe on Z is then discounted below mid's
        # full scan (1000 * SELECTIVITY < 200), so the larger relation is
        # joined earlier because its probe is cheaper.
        rule = parse_rule("p(X, Y) :- big(Z, X), mid(X, Y), small(Z, Q).")
        sizes = {"big": 1000.0, "mid": 200.0, "small": 3.0}
        ordered = order_body_cost(rule, None, lambda lit: sizes[lit.predicate])
        assert sizes["big"] * SELECTIVITY < sizes["mid"]
        assert _literal_names(ordered) == ["small", "big", "mid"]

    def test_cost_never_introduces_cross_products(self):
        # unrelated(W) is cheaper than link, but shares no variable with
        # the bound set after left is scanned — the connected literal
        # must win even when it is pricier.
        rule = parse_rule("q(X, Y, W) :- left(X), link(X, Y), unrelated(W).")
        sizes = {"left": 5.0, "link": 10000.0, "unrelated": 40.0}
        ordered = order_body_cost(rule, None, lambda lit: sizes[lit.predicate])
        assert _literal_names(ordered) == ["left", "link", "unrelated"]

    def test_cost_empty_relation_short_circuits_first(self):
        rule = parse_rule("p(X, Y) :- big(X, Z), empty(Z, Y).")
        sizes = {"big": 1000.0, "empty": 0.0}
        ordered = order_body_cost(rule, None, lambda lit: sizes[lit.predicate])
        assert _literal_names(ordered) == ["empty", "big"]


class TestCompiledPlan:
    def test_fully_bound_literal_becomes_existence_check(self):
        rule = parse_rule("q(X) :- start(X), path(X, Y), end(Y).")
        plan = compile_rule(rule, order="greedy")
        assert "exists end" in plan.describe()

    def test_existence_check_scans_zero_rows(self):
        program = parse_program(
            "q(X) :- e(X, Y), mark(Y).",
            query="q",
        )
        database = Database.from_rows(
            {"e": [(1, 2), (3, 4)], "mark": [(2,), (9,)]}
        )
        result = evaluate(program, database, engine="slots")
        # Only the e scan touches rows; the bound mark(Y) is a membership
        # test contributing probes but zero rows_scanned.
        assert result.rows("q") == frozenset({(1,)})
        assert result.stats.rows_scanned == 2

    def test_repeated_variable_within_literal(self):
        program = parse_program("p(X) :- t(X, X).", query="p")
        database = Database.from_rows({"t": [(1, 1), (1, 2), (3, 3)]})
        for engine in ("slots", "interpreted"):
            result = evaluate(program, database.copy(), engine=engine)
            assert result.rows("p") == frozenset({(1,), (3,)})

    def test_head_constant_and_projection(self):
        program = parse_program("p(7, Y) :- e(X, Y).", query="p")
        database = Database.from_rows({"e": [(1, 2)]})
        result = evaluate(program, database)
        assert result.rows("p") == frozenset({(7, 2)})

    def test_unbound_head_variable_rejected(self):
        rule = parse_rule("p(X, Y) :- e(X, Z).")
        with pytest.raises(ValueError):
            compile_rule(rule, order="greedy")

    def test_unknown_order_rejected(self):
        rule = parse_rule("p(X, Y) :- e(X, Y).")
        with pytest.raises(ValueError):
            compile_rule(rule, order="alphabetical")

    def test_cost_without_estimator_falls_back_to_greedy(self):
        rule = parse_rule("p(X, Y) :- e(X, Y).")
        plan = compile_rule(rule, order="cost", size_of=None)
        assert plan.order == "cost"
        assert "scan e" in plan.describe()

    def test_plan_run_counts_env_allocations(self):
        program = parse_program("p(X, Y) :- e(X, Y).", query="p")
        database = Database.from_rows({"e": [(1, 2), (3, 4)]})
        result = evaluate(program, database)
        # One slot-list per rule execution plus one tuple per result row.
        assert result.stats.env_allocations == 3

    def test_support_rows_follow_rule_order(self):
        rule = parse_rule("q(X) :- end(Y), e(X, Y).")
        plan = compile_rule(
            rule, order="cost", size_of=lambda lit: {"end": 1.0, "e": 100.0}[lit.predicate]
        )
        # Provenance supports stay in textual rule order even though the
        # plan scans end(Y) first.
        program = parse_program("q(X) :- end(Y), e(X, Y).", query="q")
        database = Database.from_rows({"end": [(2,)], "e": [(1, 2)]})
        result = evaluate(program, database, provenance=True)
        (rule_used, supports), = [result.provenance[("q", (1,))]]
        del rule_used
        assert [s[0] for s in [supports[0], supports[1]]] == ["end", "e"]


class TestNoneValues:
    """A legitimate ``None`` stored in a row must never read as 'unbound'."""

    def test_none_row_value_does_not_unify_with_distinct_value(self):
        program = parse_program("p(X) :- t(X, X).", query="p")
        database = Database.from_rows({"t": [(None, 5)]})
        for engine in ("slots", "interpreted"):
            result = evaluate(program, database.copy(), engine=engine)
            assert result.rows("p") == frozenset()

    def test_none_joins_with_none(self):
        program = parse_program("p(X) :- t(X, X).", query="p")
        database = Database.from_rows({"t": [(None, None), (None, 1)]})
        for engine in ("slots", "interpreted"):
            result = evaluate(program, database.copy(), engine=engine)
            assert result.rows("p") == frozenset({(None,)})

    def test_none_values_join_across_literals(self):
        program = parse_program("p(X, Z) :- e(X, Y), f(Y, Z).", query="p")
        database = Database.from_rows(
            {"e": [(1, None)], "f": [(None, 3), (0, 4)]}
        )
        for engine in ("slots", "interpreted"):
            result = evaluate(program, database.copy(), engine=engine)
            assert result.rows("p") == frozenset({(1, 3)})
