"""Engine agreement: compiled plans (both orders), the interpreter and
naive evaluation compute identical fixpoints on random workloads —
under both storage backends.

``random_workload`` draws recursive programs that include negated EDB
literals and order-atom filters, so the property exercises every step
kind of the compiled engine against the seed interpreter and the naive
oracle.  The storage axis crosses every engine/strategy config with
``rows`` and ``columnar``, so the block-kernel path and the
tuple-at-a-time path are held to the same answers on every workload.
"""

import pytest

from repro.datalog.database import STORAGES
from repro.datalog.evaluation import evaluate
from repro.digest import fixpoint_digest
from repro.robustness.budget import Budget
from repro.robustness.errors import BudgetExceededError
from repro.workloads.generators import random_workload
from repro.workloads.programs import good_path
from repro.workloads.generators import good_path_bidirectional_database

ENGINE_CONFIGS = (
    {"engine": "slots", "plan_order": "cost"},
    {"engine": "slots", "plan_order": "greedy"},
    {"engine": "interpreted"},
    {"engine": "slots", "strategy": "naive"},
    {"engine": "interpreted", "strategy": "naive"},
)

# The full storage × engine × strategy agreement matrix.
CONFIGS = tuple(
    {**config, "storage": storage}
    for storage in STORAGES
    for config in ENGINE_CONFIGS
)


def _fixpoint(program, database, **kwargs):
    result = evaluate(program, database, **kwargs)
    return {pred: result.rows(pred) for pred in program.idb_predicates}


@pytest.mark.parametrize("seed", range(20))
def test_all_engines_agree_on_random_workloads(seed):
    program, database, _ = random_workload(seed)
    fixpoints = [
        _fixpoint(program, database.copy(), **config) for config in CONFIGS
    ]
    for other in fixpoints[1:]:
        assert other == fixpoints[0]


@pytest.mark.parametrize("seed", range(20, 26))
def test_engines_agree_on_denser_graphs(seed):
    program, database, _ = random_workload(seed, nodes=8, edges=40)
    fixpoints = [
        _fixpoint(program, database.copy(), **config) for config in CONFIGS
    ]
    for other in fixpoints[1:]:
        assert other == fixpoints[0]


# ----------------------------------------------------------------------
# The workers axis: the multiprocess sharded evaluator (repro.parallel)
# held to the sequential slot engine.  A WorkerPool is bound to one
# program + EDB, so every seed costs a fresh fork — seeds are pooled
# inside each worker-count case instead of crossed into the parametrize
# grid to keep the fork bill bounded.

WORKER_COUNTS = (1, 2, 4)

#: ``random_workload`` draws negated EDB literals and order-atom
#: filters at these seeds; the denser draws run enough semi-naive
#: rounds to exercise repeated barrier merges.
SHARDED_SEEDS = (
    (0, {}),
    (3, {}),
    (7, {}),
    (21, {"nodes": 8, "edges": 40}),
    (24, {"nodes": 8, "edges": 40}),
)


def _digest(result):
    return fixpoint_digest([("workload", result.idb)])


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_sharded_evaluator_matches_sequential_slots(workers):
    """``evaluate(..., workers=N)`` must reproduce the sequential slot
    engine exactly: same fixpoint digest, same iteration count, and the
    same join-work counters — sharding redistributes the work, it never
    changes it (docs/parallel.md)."""
    for seed, kwargs in SHARDED_SEEDS:
        program, database, _ = random_workload(seed, **kwargs)
        sequential = evaluate(
            program, database.copy(), engine="slots", storage="columnar"
        )
        sharded = evaluate(
            program,
            database.copy(),
            engine="slots",
            storage="columnar",
            workers=workers,
        )
        label = f"seed={seed} workers={workers}"
        assert _digest(sharded) == _digest(sequential), label
        assert sharded.stats.iterations == sequential.stats.iterations, label
        assert sharded.stats.rule_firings == sequential.stats.rule_firings, label
        assert sharded.stats.facts_derived == sequential.stats.facts_derived, label
        assert sharded.stats.rows_scanned == sequential.stats.rows_scanned, label
        assert (
            sharded.stats.rows_scanned_by_rule
            == sequential.stats.rows_scanned_by_rule
        ), label
        assert sharded.shards is not None and sharded.shards["workers"] == workers


@pytest.mark.parametrize("storage", STORAGES)
def test_sharded_evaluator_agrees_across_input_storages(storage):
    """The sharded evaluator accepts either storage backend as input
    (converting to columnar for the hand-off) and lands on the same
    digest either way."""
    program, database, _ = random_workload(21, nodes=8, edges=40)
    sequential = evaluate(program, database.copy(), engine="slots", storage=storage)
    sharded = evaluate(
        program, database.copy(), engine="slots", storage=storage, workers=2
    )
    assert _digest(sharded) == _digest(sequential)
    assert sharded.stats.iterations == sequential.stats.iterations


def test_sharded_budget_trip_partial_is_subset_of_fixpoint():
    """A budget trip mid-fleet aborts every worker and merges what was
    accepted so far: the partial IDB must be a subset of the true
    fixpoint, with merged stats and a sharding report attached."""
    program, database, _ = random_workload(21, nodes=8, edges=40)
    full = evaluate(program, database.copy(), engine="slots", storage="columnar")
    with pytest.raises(BudgetExceededError) as info:
        evaluate(
            program,
            database.copy(),
            engine="slots",
            storage="columnar",
            workers=4,
            budget=Budget(max_facts=1),
        )
    exc = info.value
    assert exc.partial is not None and exc.stats is not None
    for predicate, relation in exc.partial.idb.items():
        assert set(relation.rows()) <= set(full.rows(predicate)), predicate
    derived = sum(len(rel) for rel in exc.partial.idb.values())
    assert derived < sum(len(full.rows(p)) for p in program.idb_predicates)
    assert exc.partial.shards is not None and exc.partial.shards["workers"] == 4


def test_storages_agree_on_example31():
    """Example 3.1 (the paper's goodPath workload): both storage
    backends compute identical answers under the compiled engine, and
    the slot-level work counters (probes, rows scanned, facts derived)
    are exactly equal — the columnar backend batches the same work, it
    does not do different work."""
    program, _ = good_path()
    database = good_path_bidirectional_database(num_chains=3, chain_length=12, seed=0)

    rows = evaluate(program, database.copy(), engine="slots", storage="rows")
    columnar = evaluate(program, database.copy(), engine="slots", storage="columnar")

    assert columnar.query_rows() == rows.query_rows()
    assert columnar.stats.probes == rows.stats.probes
    assert columnar.stats.rows_scanned == rows.stats.rows_scanned
    assert columnar.stats.facts_derived == rows.stats.facts_derived
    assert columnar.stats.rule_firings == rows.stats.rule_firings
    assert columnar.stats.iterations == rows.stats.iterations
    # Only the batching-specific counters diverge: the columnar engine
    # allocates one environment block per kernel call, not one per row,
    # and counts each kernel invocation as a block probe.
    assert columnar.stats.block_probes > 0
    assert rows.stats.block_probes == 0
    assert columnar.stats.env_allocations < rows.stats.env_allocations


def test_example31_rows_scanned_regression():
    """The compiled cost-ordered engine must scan strictly fewer rows
    than the seed interpreter on the Example 3.1 workload (and at most
    as many as the greedy-ordered plans), with identical answers."""
    program, _ = good_path()
    database = good_path_bidirectional_database(num_chains=3, chain_length=12, seed=0)

    interpreted = evaluate(program, database.copy(), engine="interpreted")
    greedy = evaluate(
        program, database.copy(), engine="slots", plan_order="greedy"
    )
    cost = evaluate(program, database.copy(), engine="slots", plan_order="cost")

    assert cost.query_rows() == interpreted.query_rows()
    assert greedy.query_rows() == interpreted.query_rows()
    assert cost.stats.rows_scanned < interpreted.stats.rows_scanned
    assert cost.stats.rows_scanned <= greedy.stats.rows_scanned

    # The per-rule attribution exists for every rule that scanned rows,
    # and adds up to the total.
    assert sum(cost.stats.rows_scanned_by_rule.values()) == cost.stats.rows_scanned
    goodpath_rules = [
        key for key in cost.stats.rows_scanned_by_rule if key.startswith("goodPath")
    ]
    assert goodpath_rules
    for key in goodpath_rules:
        assert (
            cost.stats.rows_scanned_by_rule[key]
            <= interpreted.stats.rows_scanned_by_rule[key]
        )
