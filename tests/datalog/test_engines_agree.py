"""Engine agreement: compiled plans (both orders), the interpreter and
naive evaluation compute identical fixpoints on random workloads —
under both storage backends.

``random_workload`` draws recursive programs that include negated EDB
literals and order-atom filters, so the property exercises every step
kind of the compiled engine against the seed interpreter and the naive
oracle.  The storage axis crosses every engine/strategy config with
``rows`` and ``columnar``, so the block-kernel path and the
tuple-at-a-time path are held to the same answers on every workload.
"""

import pytest

from repro.datalog.database import STORAGES
from repro.datalog.evaluation import evaluate
from repro.workloads.generators import random_workload
from repro.workloads.programs import good_path
from repro.workloads.generators import good_path_bidirectional_database

ENGINE_CONFIGS = (
    {"engine": "slots", "plan_order": "cost"},
    {"engine": "slots", "plan_order": "greedy"},
    {"engine": "interpreted"},
    {"engine": "slots", "strategy": "naive"},
    {"engine": "interpreted", "strategy": "naive"},
)

# The full storage × engine × strategy agreement matrix.
CONFIGS = tuple(
    {**config, "storage": storage}
    for storage in STORAGES
    for config in ENGINE_CONFIGS
)


def _fixpoint(program, database, **kwargs):
    result = evaluate(program, database, **kwargs)
    return {pred: result.rows(pred) for pred in program.idb_predicates}


@pytest.mark.parametrize("seed", range(20))
def test_all_engines_agree_on_random_workloads(seed):
    program, database, _ = random_workload(seed)
    fixpoints = [
        _fixpoint(program, database.copy(), **config) for config in CONFIGS
    ]
    for other in fixpoints[1:]:
        assert other == fixpoints[0]


@pytest.mark.parametrize("seed", range(20, 26))
def test_engines_agree_on_denser_graphs(seed):
    program, database, _ = random_workload(seed, nodes=8, edges=40)
    fixpoints = [
        _fixpoint(program, database.copy(), **config) for config in CONFIGS
    ]
    for other in fixpoints[1:]:
        assert other == fixpoints[0]


def test_storages_agree_on_example31():
    """Example 3.1 (the paper's goodPath workload): both storage
    backends compute identical answers under the compiled engine, and
    the slot-level work counters (probes, rows scanned, facts derived)
    are exactly equal — the columnar backend batches the same work, it
    does not do different work."""
    program, _ = good_path()
    database = good_path_bidirectional_database(num_chains=3, chain_length=12, seed=0)

    rows = evaluate(program, database.copy(), engine="slots", storage="rows")
    columnar = evaluate(program, database.copy(), engine="slots", storage="columnar")

    assert columnar.query_rows() == rows.query_rows()
    assert columnar.stats.probes == rows.stats.probes
    assert columnar.stats.rows_scanned == rows.stats.rows_scanned
    assert columnar.stats.facts_derived == rows.stats.facts_derived
    assert columnar.stats.rule_firings == rows.stats.rule_firings
    assert columnar.stats.iterations == rows.stats.iterations
    # Only the batching-specific counters diverge: the columnar engine
    # allocates one environment block per kernel call, not one per row,
    # and counts each kernel invocation as a block probe.
    assert columnar.stats.block_probes > 0
    assert rows.stats.block_probes == 0
    assert columnar.stats.env_allocations < rows.stats.env_allocations


def test_example31_rows_scanned_regression():
    """The compiled cost-ordered engine must scan strictly fewer rows
    than the seed interpreter on the Example 3.1 workload (and at most
    as many as the greedy-ordered plans), with identical answers."""
    program, _ = good_path()
    database = good_path_bidirectional_database(num_chains=3, chain_length=12, seed=0)

    interpreted = evaluate(program, database.copy(), engine="interpreted")
    greedy = evaluate(
        program, database.copy(), engine="slots", plan_order="greedy"
    )
    cost = evaluate(program, database.copy(), engine="slots", plan_order="cost")

    assert cost.query_rows() == interpreted.query_rows()
    assert greedy.query_rows() == interpreted.query_rows()
    assert cost.stats.rows_scanned < interpreted.stats.rows_scanned
    assert cost.stats.rows_scanned <= greedy.stats.rows_scanned

    # The per-rule attribution exists for every rule that scanned rows,
    # and adds up to the total.
    assert sum(cost.stats.rows_scanned_by_rule.values()) == cost.stats.rows_scanned
    goodpath_rules = [
        key for key in cost.stats.rows_scanned_by_rule if key.startswith("goodPath")
    ]
    assert goodpath_rules
    for key in goodpath_rules:
        assert (
            cost.stats.rows_scanned_by_rule[key]
            <= interpreted.stats.rows_scanned_by_rule[key]
        )
