"""Unit tests for rules (safety) and programs (structure)."""

import pytest

from repro.datalog.atoms import Atom, Literal, OrderAtom
from repro.datalog.parser import parse_program, parse_rule, parse_rules
from repro.datalog.program import Program, ProgramError
from repro.datalog.rules import Rule, UnsafeRuleError, limited_variables
from repro.datalog.terms import Constant, Substitution, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestSafety:
    def test_plain_rule_safe(self):
        assert parse_rule("p(X) :- e(X, Y).").is_safe()

    def test_head_variable_unlimited(self):
        rule = Rule(Atom("p", (X, Y)), (Literal(Atom("e", (X,))),))
        assert not rule.is_safe()
        with pytest.raises(UnsafeRuleError):
            rule.check_safe()

    def test_negated_variable_unlimited(self):
        rule = Rule(
            Atom("p", (X,)),
            (Literal(Atom("e", (X,))), Literal(Atom("f", (Y,)), positive=False)),
        )
        assert not rule.is_safe()

    def test_order_variable_unlimited(self):
        rule = Rule(Atom("p", (X,)), (Literal(Atom("e", (X,))), OrderAtom(Y, "<", X)))
        assert not rule.is_safe()

    def test_equality_limits_through_constant(self):
        rule = parse_rule("p(X) :- X = 5.")
        assert rule.is_safe()

    def test_equality_chain_limits(self):
        rule = parse_rule("p(X) :- e(Y), X = Z, Z = Y.")
        assert rule.is_safe()

    def test_limited_variables_fixpoint(self):
        body = (OrderAtom(X, "=", Constant(1)), OrderAtom(Y, "=", X))
        assert limited_variables(body) == {X, Y}


class TestRuleViews:
    def test_partitions_of_body(self):
        rule = parse_rule("p(X) :- e(X, Y), not f(Y), X < Y.")
        assert len(rule.positive_literals) == 1
        assert len(rule.negative_literals) == 1
        assert len(rule.order_atoms) == 1
        assert rule.body_predicates() == {"e", "f"}

    def test_rename_apart(self):
        rule = parse_rule("p(X) :- e(X, Y).")
        renamed = rule.rename_apart([X])
        assert X not in renamed.variables()
        assert renamed.head.predicate == "p"

    def test_rename_apart_noop_without_clash(self):
        rule = parse_rule("p(X) :- e(X, Y).")
        assert rule.rename_apart([Variable("Other")]) is rule

    def test_with_extra_conditions_dedups(self):
        rule = parse_rule("p(X) :- e(X, Y), X < Y.")
        extended = rule.with_extra_conditions([OrderAtom(X, "<", Y), OrderAtom(Y, ">", X)])
        # X < Y is already present; Y > X is syntactically different, kept.
        assert len(extended.order_atoms) == 2

    def test_is_fact(self):
        assert parse_rules("p(1).")[0].is_fact()
        assert not parse_rule("p(X) :- e(X).").is_fact()

    def test_substitute(self):
        rule = parse_rule("p(X) :- e(X, Y).")
        ground = rule.substitute(Substitution({X: Constant(1), Y: Constant(2)}))
        assert ground.head.is_ground()


class TestProgram:
    def test_idb_edb_split(self):
        program = parse_program("p(X) :- e(X). q(X) :- p(X), f(X).")
        assert program.idb_predicates == {"p", "q"}
        assert program.edb_predicates == {"e", "f"}

    def test_arity_conflict_rejected(self):
        with pytest.raises(ProgramError):
            parse_program("p(X) :- e(X). p(X, Y) :- e(X), e(Y).")

    def test_negated_idb_rejected(self):
        with pytest.raises(ProgramError):
            parse_program("p(X) :- e(X). q(X) :- e(X), not p(X).")

    def test_unknown_query_rejected(self):
        with pytest.raises(ProgramError):
            parse_program("p(X) :- e(X).", query="missing")

    def test_recursion_detection(self):
        program = parse_program(
            "p(X, Y) :- e(X, Y). p(X, Y) :- e(X, Z), p(Z, Y). q(X) :- p(X, X)."
        )
        assert program.is_recursive_predicate("p")
        assert not program.is_recursive_predicate("q")
        assert program.is_recursive()

    def test_mutual_recursion(self):
        program = parse_program(
            "even(X) :- zero(X). even(X) :- succ(Y, X), odd(Y). odd(X) :- succ(Y, X), even(Y)."
        )
        assert program.is_recursive_predicate("even")
        assert program.is_recursive_predicate("odd")

    def test_initialization_rules(self):
        program = parse_program(
            "p(X, Y) :- e(X, Y). p(X, Y) :- e(X, Z), p(Z, Y)."
        )
        init = program.initialization_rules()
        assert len(init) == 1
        assert init[0].body_predicates() == {"e"}

    def test_classification(self):
        plain = parse_program("p(X) :- e(X).")
        assert plain.classification() == frozenset()
        theta = parse_program("p(X) :- e(X), X < 5.")
        assert theta.classification() == {"theta"}
        both = parse_program("p(X) :- e(X), X < 5, not f(X).")
        assert both.classification() == {"theta", "not"}

    def test_relevant_rules(self):
        program = parse_program(
            "p(X) :- e(X). q(X) :- p(X). r(X) :- f(X).", query="q"
        )
        relevant = program.relevant_rules()
        assert relevant.idb_predicates == {"p", "q"}

    def test_linear_recursive(self):
        linear = parse_program("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).")
        assert linear.is_linear_recursive()
        nonlinear = parse_program("t(X, Y) :- e(X, Y). t(X, Y) :- t(X, Z), t(Z, Y).")
        assert not nonlinear.is_linear_recursive()

    def test_predicate_info(self):
        program = parse_program("p(X, Y) :- e(X, Y). p(X, Y) :- e(X, Z), p(Z, Y).")
        info = program.predicate_info()
        assert info["p"].is_idb and info["p"].is_recursive and info["p"].arity == 2
        assert not info["e"].is_idb
