"""Bag-semantics substrate tests + the duplicates extension claim.

The paper defers SQO for duplicate-sensitive queries to future work;
here we verify the executable half of the story: residue-negation
injection preserves bag semantics on constraint-consistent databases
(the injected conditions hold for every instantiation), while the
support always matches set semantics.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.residues import constrain_program
from repro.datalog.bag import (
    BagRelation,
    RecursiveProgramError,
    bag_equal,
    evaluate_bag,
)
from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_constraints, parse_program


class TestBagRelation:
    def test_multiplicities_accumulate(self):
        bag = BagRelation(1)
        bag.add((1,))
        bag.add((1,), 2)
        assert bag.multiplicity((1,)) == 3
        assert bag.total() == 3
        assert len(bag) == 1

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            BagRelation(2).add((1,))

    def test_positive_multiplicity_required(self):
        with pytest.raises(ValueError):
            BagRelation(1).add((1,), 0)

    def test_equality(self):
        assert BagRelation(1, [(1,), (1,)]) == BagRelation(1, [(1,), (1,)])
        assert BagRelation(1, [(1,)]) != BagRelation(1, [(1,), (1,)])


class TestEvaluateBag:
    def test_join_multiplicities_multiply(self):
        program = parse_program("q(X, Z) :- r(X, Y), s(Y, Z).")
        edb = {
            "r": BagRelation(2, [(1, 2), (1, 2)]),  # multiplicity 2
            "s": BagRelation(2, [(2, 3), (2, 3), (2, 3)]),  # multiplicity 3
        }
        result = evaluate_bag(program, edb)
        assert result["q"].multiplicity((1, 3)) == 6

    def test_union_all_adds(self):
        program = parse_program("q(X) :- r(X). q(X) :- s(X).")
        edb = {"r": BagRelation(1, [(1,)]), "s": BagRelation(1, [(1,)])}
        result = evaluate_bag(program, edb)
        assert result["q"].multiplicity((1,)) == 2

    def test_projection_accumulates(self):
        program = parse_program("q(X) :- r(X, Y).")
        edb = {"r": BagRelation(2, [(1, 2), (1, 3)])}
        result = evaluate_bag(program, edb)
        assert result["q"].multiplicity((1,)) == 2

    def test_filters_and_negation(self):
        program = parse_program("q(X) :- r(X, Y), X < Y, not bad(X).")
        edb = {
            "r": BagRelation(2, [(1, 2), (3, 2), (4, 5)]),
            "bad": BagRelation(1, [(4,)]),
        }
        result = evaluate_bag(program, edb)
        assert result["q"].support() == {(1,)}

    def test_plain_database_input(self):
        program = parse_program("q(X) :- r(X, Y).")
        result = evaluate_bag(program, Database.from_rows({"r": [(1, 2)]}))
        assert result["q"].multiplicity((1,)) == 1

    def test_recursion_rejected(self):
        program = parse_program("t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).")
        with pytest.raises(RecursiveProgramError):
            evaluate_bag(program, Database())

    def test_layered_idb(self):
        program = parse_program(
            "mid(X, Z) :- r(X, Y), r(Y, Z). top(X) :- mid(X, Z), mark(Z)."
        )
        edb = {
            "r": BagRelation(2, [(1, 2), (2, 3), (2, 3)]),
            "mark": BagRelation(1, [(3,)]),
        }
        result = evaluate_bag(program, edb)
        assert result["mid"].multiplicity((1, 3)) == 2
        assert result["top"].multiplicity((1,)) == 2

    def test_oracle_cross_product(self):
        """Brute-force oracle: count join assignments directly."""
        rng = random.Random(0)
        rows_r = [(rng.randint(0, 2), rng.randint(0, 2)) for _ in range(6)]
        rows_s = [(rng.randint(0, 2), rng.randint(0, 2)) for _ in range(6)]
        program = parse_program("q(X, Z) :- r(X, Y), s(Y, Z).")
        edb = {"r": BagRelation(2, rows_r), "s": BagRelation(2, rows_s)}
        result = evaluate_bag(program, edb)
        expected = {}
        for (x, y1), (y2, z) in itertools.product(rows_r, rows_s):
            if y1 == y2:
                expected[(x, z)] = expected.get((x, z), 0) + 1
        assert dict(result["q"].counts) == expected


class TestSupportMatchesSetSemantics:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_support_equals_set_evaluation(self, seed):
        rng = random.Random(seed)
        program = parse_program(
            """
            mid(X, Z) :- e(X, Y), e(Y, Z).
            q(X) :- mid(X, Z), v(Z).
            """,
            query="q",
        )
        database = Database.from_rows(
            {
                "e": {(rng.randint(0, 3), rng.randint(0, 3)) for _ in range(8)},
                "v": {(rng.randint(0, 3),) for _ in range(2)},
            }
        )
        bags = evaluate_bag(program, database)
        sets = evaluate(program, database)
        for predicate in program.idb_predicates:
            assert bags[predicate].support() == sets.rows(predicate)


class TestDuplicatesExtensionClaim:
    def test_residue_injection_preserves_bags(self):
        """On consistent databases the injected conditions hold for every
        instantiation, so multiplicities are untouched — the duplicates
        extension works for residue injection."""
        program = parse_program(
            "good(X, Y) :- startPoint(X), hop(X, Y), endPoint(Y).",
            query="good",
        )
        constraints = parse_constraints(":- startPoint(X), endPoint(Y), Y <= X.")
        optimized = constrain_program(program, constraints)
        # The rewriting added Y > X.
        assert optimized.rules[0].order_atoms
        database = Database.from_rows(
            {
                "startPoint": [(1,), (2,)],
                "endPoint": [(5,), (6,)],
                "hop": [(1, 5), (1, 6), (2, 5)],
            }
        )
        original = evaluate_bag(program, database)
        rewritten = evaluate_bag(optimized, database)
        assert bag_equal(original, rewritten)

    def test_union_all_duplication_hazard(self):
        """Why the full extension is nontrivial: overlapping
        specializations unioned back together change multiplicities."""
        single = parse_program("q(X) :- r(X).")
        split = parse_program(
            """
            q_lo(X) :- r(X), X <= 5.
            q_hi(X) :- r(X), X >= 5.
            q(X) :- q_lo(X).
            q(X) :- q_hi(X).
            """
        )
        edb = {"r": BagRelation(1, [(5,)])}
        assert evaluate_bag(single, edb)["q"].multiplicity((5,)) == 1
        assert evaluate_bag(split, edb)["q"].multiplicity((5,)) == 2
