"""Parser tests: round trips and error reporting."""

import pytest

from repro.datalog.atoms import Literal, OrderAtom
from repro.datalog.parser import (
    ParseError,
    parse_atom,
    parse_constraints,
    parse_facts,
    parse_program,
    parse_rule,
    parse_rules,
    parse_term,
)
from repro.datalog.terms import Constant, Variable


class TestTerms:
    def test_variable_uppercase(self):
        assert parse_term("Xyz") == Variable("Xyz")

    def test_variable_underscore(self):
        assert parse_term("_x") == Variable("_x")

    def test_symbol_constant(self):
        assert parse_term("abc") == Constant("abc")

    def test_integer(self):
        assert parse_term("42") == Constant(42)

    def test_negative_integer(self):
        assert parse_term("-7") == Constant(-7)

    def test_float(self):
        assert parse_term("3.5") == Constant(3.5)

    def test_quoted_string(self):
        assert parse_term('"Hello World"') == Constant("Hello World")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_term("1 2")


class TestAtoms:
    def test_simple(self):
        atom = parse_atom("e(X, 1, abc)")
        assert atom.predicate == "e"
        assert atom.args == (Variable("X"), Constant(1), Constant("abc"))

    def test_zero_arity(self):
        assert parse_atom("halt()").args == ()

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("Pred(X)")


class TestRules:
    def test_fact(self):
        rule = parse_rules("e(1, 2).")[0]
        assert rule.is_fact()

    def test_rule_with_all_item_kinds(self):
        rule = parse_rule("p(X) :- e(X, Y), not f(Y), X < Y, Y != 3.")
        assert len(rule.positive_literals) == 1
        assert len(rule.negative_literals) == 1
        assert len(rule.order_atoms) == 2

    def test_neq_alias(self):
        rule = parse_rule("p(X) :- e(X, Y), X <> Y.")
        assert rule.order_atoms[0].op == "!="

    def test_comments_ignored(self):
        rules = parse_rules("% header\np(X) :- e(X). % trailing\n")
        assert len(rules) == 1

    def test_roundtrip_through_repr(self):
        source = "p(X, Y) :- e(X, Z), not f(Z), Z <= Y, q(Z, Y)."
        rule = parse_rule(source)
        assert parse_rule(repr(rule)) == rule

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_rules("p(X) :- e(X)")

    def test_constraint_rejected_in_parse_rules(self):
        with pytest.raises(ParseError):
            parse_rules(":- e(X, X).")

    def test_multiple_statements(self):
        rules = parse_rules("p(X) :- e(X). q(X) :- p(X).")
        assert [r.head.predicate for r in rules] == ["p", "q"]


class TestConstraintsAndFacts:
    def test_constraints(self):
        constraints = parse_constraints(":- e(X, Y), f(Y). :- g(X), X < 5.")
        assert len(constraints) == 2
        assert constraints[1].order_atoms[0] == OrderAtom(Variable("X"), "<", Constant(5))

    def test_rule_rejected_in_constraints(self):
        with pytest.raises(ParseError):
            parse_constraints("p(X) :- e(X).")

    def test_facts(self):
        facts = parse_facts('e(1, 2). name("New York").')
        assert facts[0].args == (Constant(1), Constant(2))
        assert facts[1].args == (Constant("New York"),)

    def test_nonground_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_facts("e(X, 1).")

    def test_rule_rejected_in_facts(self):
        with pytest.raises(ParseError):
            parse_facts("p(X) :- e(X).")


class TestProgramParsing:
    def test_program_with_query(self):
        program = parse_program("p(X) :- e(X).", query="p")
        assert program.query == "p"

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_program("p(X) :- e(X) & f(X).")

    def test_repr_roundtrip(self):
        source = """
        path(X, Y) :- step(X, Y).
        path(X, Y) :- step(X, Z), path(Z, Y).
        """
        program = parse_program(source)
        again = parse_program(repr(program))
        assert again.rules == program.rules
