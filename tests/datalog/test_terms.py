"""Unit tests for terms and substitutions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog.terms import (
    Constant,
    Substitution,
    Variable,
    fresh_variables,
    is_constant,
    is_variable,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable(self):
        assert len({Variable("X"), Variable("X"), Variable("Y")}) == 2

    def test_repr(self):
        assert repr(Variable("Abc")) == "Abc"


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(3) == Constant(3)
        assert Constant(3) != Constant(4)
        assert Constant("a") != Constant(3)

    def test_repr_lowercase_symbol(self):
        assert repr(Constant("abc")) == "abc"

    def test_repr_numeric(self):
        assert repr(Constant(5)) == "5"

    def test_repr_nonsymbol_string_quoted(self):
        assert repr(Constant("Abc")) == '"Abc"'

    def test_comparable_families(self):
        assert Constant(1).comparable_with(Constant(2.5))
        assert Constant("a").comparable_with(Constant("b"))
        assert not Constant(1).comparable_with(Constant("a"))

    def test_predicates(self):
        assert is_constant(Constant(1))
        assert not is_constant(Variable("X"))
        assert is_variable(Variable("X"))
        assert not is_variable(Constant(1))


class TestSubstitution:
    def test_apply_bound_and_unbound(self):
        theta = Substitution({Variable("X"): Constant(1)})
        assert theta.apply(Variable("X")) == Constant(1)
        assert theta.apply(Variable("Y")) == Variable("Y")
        assert theta.apply(Constant(9)) == Constant(9)

    def test_rejects_bad_keys(self):
        with pytest.raises(TypeError):
            Substitution({Constant(1): Constant(2)})  # type: ignore[dict-item]

    def test_rejects_bad_values(self):
        with pytest.raises(TypeError):
            Substitution({Variable("X"): "raw"})  # type: ignore[dict-item]

    def test_compose_applies_second_to_images(self):
        first = Substitution({Variable("X"): Variable("Y")})
        second = Substitution({Variable("Y"): Constant(7)})
        composed = first.compose(second)
        assert composed.apply(Variable("X")) == Constant(7)
        assert composed.apply(Variable("Y")) == Constant(7)

    def test_compose_keeps_second_only_bindings(self):
        first = Substitution({Variable("X"): Constant(1)})
        second = Substitution({Variable("Z"): Constant(2)})
        composed = first.compose(second)
        assert composed[Variable("Z")] == Constant(2)
        assert composed[Variable("X")] == Constant(1)

    def test_extend_and_restrict(self):
        theta = Substitution().extend(Variable("X"), Constant(1)).extend(
            Variable("Y"), Constant(2)
        )
        restricted = theta.restrict([Variable("X")])
        assert dict(restricted) == {Variable("X"): Constant(1)}

    def test_is_renaming(self):
        assert Substitution({Variable("X"): Variable("Y")}).is_renaming()
        assert not Substitution({Variable("X"): Constant(1)}).is_renaming()
        assert not Substitution(
            {Variable("X"): Variable("Z"), Variable("Y"): Variable("Z")}
        ).is_renaming()

    def test_equality_and_hash(self):
        a = Substitution({Variable("X"): Constant(1)})
        b = Substitution({Variable("X"): Constant(1)})
        assert a == b
        assert hash(a) == hash(b)

    @given(st.dictionaries(
        st.sampled_from([Variable(n) for n in "XYZW"]),
        st.sampled_from([Constant(i) for i in range(4)]),
    ))
    def test_mapping_protocol(self, mapping):
        theta = Substitution(mapping)
        assert len(theta) == len(mapping)
        assert dict(theta) == mapping


class TestFreshVariables:
    def test_avoids_collisions(self):
        stream = fresh_variables("V", avoid=[Variable("V0"), Variable("V2")])
        assert [next(stream) for _ in range(3)] == [
            Variable("V1"),
            Variable("V3"),
            Variable("V4"),
        ]

    def test_prefix(self):
        stream = fresh_variables("Fresh")
        assert next(stream) == Variable("Fresh0")
