"""Unit tests for atoms, order atoms and literals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog.atoms import (
    COMPARISONS,
    Atom,
    Literal,
    OrderAtom,
    body_variables,
    evaluate_comparison,
    flip_comparison,
    negate_comparison,
)
from repro.datalog.terms import Constant, Substitution, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestComparisonAlgebra:
    def test_negation_is_involutive(self):
        for op in COMPARISONS:
            assert negate_comparison(negate_comparison(op)) == op

    def test_flip_is_involutive(self):
        for op in COMPARISONS:
            assert flip_comparison(flip_comparison(op)) == op

    @given(st.integers(-5, 5), st.integers(-5, 5), st.sampled_from(COMPARISONS))
    def test_negation_semantics(self, left, right, op):
        assert evaluate_comparison(left, right, op) != evaluate_comparison(
            left, right, negate_comparison(op)
        )

    @given(st.integers(-5, 5), st.integers(-5, 5), st.sampled_from(COMPARISONS))
    def test_flip_semantics(self, left, right, op):
        assert evaluate_comparison(left, right, op) == evaluate_comparison(
            right, left, flip_comparison(op)
        )

    def test_incomparable_families_raise(self):
        with pytest.raises(TypeError):
            evaluate_comparison(1, "a", "<")

    def test_equality_across_families_allowed(self):
        assert not evaluate_comparison(1, "a", "=")
        assert evaluate_comparison(1, "a", "!=")


class TestAtom:
    def test_variables_and_constants(self):
        atom = Atom("e", (X, Constant(3), X))
        assert atom.variables() == {X}
        assert atom.constants() == {Constant(3)}
        assert atom.arity == 3

    def test_is_ground(self):
        assert Atom("e", (Constant(1), Constant(2))).is_ground()
        assert not Atom("e", (Constant(1), X)).is_ground()

    def test_substitute(self):
        theta = Substitution({X: Constant(5)})
        assert Atom("e", (X, Y)).substitute(theta) == Atom("e", (Constant(5), Y))

    def test_repr(self):
        assert repr(Atom("e", (X, Constant(1)))) == "e(X, 1)"


class TestOrderAtom:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            OrderAtom(X, "<<", Y)

    def test_negated(self):
        assert OrderAtom(X, "<=", Y).negated() == OrderAtom(X, ">", Y)

    def test_flipped(self):
        assert OrderAtom(X, "<", Y).flipped() == OrderAtom(Y, ">", X)

    def test_normalized_strict(self):
        assert OrderAtom(Y, ">", X).normalized() == OrderAtom(X, "<", Y)

    def test_normalized_symmetric_sorted(self):
        assert OrderAtom(Y, "=", X).normalized() == OrderAtom(X, "=", Y)
        assert OrderAtom(X, "=", Y).normalized() == OrderAtom(X, "=", Y)

    def test_holds_ground(self):
        assert OrderAtom(Constant(1), "<", Constant(2)).holds()
        assert not OrderAtom(Constant(2), "<", Constant(1)).holds()

    def test_holds_requires_ground(self):
        with pytest.raises(ValueError):
            OrderAtom(X, "<", Constant(2)).holds()

    def test_substitute(self):
        theta = Substitution({X: Constant(1)})
        assert OrderAtom(X, "<", Y).substitute(theta) == OrderAtom(Constant(1), "<", Y)


class TestLiteral:
    def test_negation(self):
        literal = Literal(Atom("e", (X, Y)))
        assert literal.positive
        assert not literal.negated().positive
        assert literal.negated().negated() == literal

    def test_repr(self):
        assert repr(Literal(Atom("e", (X,)), positive=False)) == "not e(X)"

    def test_body_variables(self):
        body = (
            Literal(Atom("e", (X, Y))),
            OrderAtom(Y, "<", Z),
        )
        assert body_variables(body) == {X, Y, Z}
