"""The columnar storage backend: interner semantics, relation ops,
serialization round trips and checkpoint/resume interner travel.

The contract under test is written up in ``docs/storage.md``: both
backends expose the same value-level API (``add``/``probe``/
``index_for``/``all_rows``), differ only in representation, and every
digest (workload, fixpoint) is computed over *decoded* rows so it is
byte-identical across backends.
"""

import pytest

from repro.datalog.database import (
    _MISSING,
    STORAGES,
    ColumnarRelation,
    Database,
    Interner,
    Relation,
)
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.digest import fixpoint_digest, workload_digest
from repro.persist.checkpoint import Checkpoint
from repro.workloads.generators import random_workload


# ---------------------------------------------------------------- interner
def test_intern_is_idempotent_and_dense():
    interner = Interner()
    a = interner.intern("a")
    b = interner.intern("b")
    assert (a, b) == (0, 1)
    assert interner.intern("a") == a
    assert len(interner) == 2
    assert interner.decode(a) == "a"
    assert interner.to_list() == ["a", "b"]


def test_intern_counts_hits_only_for_repeats():
    interner = Interner()
    interner.intern("x")
    assert interner.hits == 0
    interner.intern("x")
    interner.intern("x")
    assert interner.hits == 2


def test_code_of_missing_value_is_a_probe_miss_sentinel():
    """``code_of`` on a never-interned constant returns a sentinel that
    hashes fine but equals nothing — so a probe key built from it
    misses every index bucket instead of raising."""
    interner = Interner()
    interner.intern("present")
    missing = interner.code_of("absent")
    assert missing is _MISSING
    assert missing != interner.intern("present")
    assert hash(missing) is not None  # usable as a dict key


def test_interner_collapses_numeric_equals_like_row_sets_do():
    """``1 == 1.0 == True`` in Python, so the interner maps them to one
    code — exactly mirroring what a row *set* does with ``(1,)`` and
    ``(True,)``.  Backends therefore collapse these identically."""
    interner = Interner()
    assert interner.intern(1) == interner.intern(1.0) == interner.intern(True)
    rows = Relation(1, [(1,), (True,)])
    columnar = ColumnarRelation(1, Interner(), [(1,), (True,)])
    assert len(rows) == len(columnar) == 1


def test_interner_seeded_from_values_reproduces_codes():
    seeded = Interner(["a", "b", "c"])
    assert seeded.code_of("b") == 1
    assert seeded.to_list() == ["a", "b", "c"]


# ------------------------------------------------------------- relations
def test_columnar_relation_matches_row_relation_api():
    rows = [("a", 1), ("b", 2), ("a", 3)]
    plain = Relation(2, rows)
    columnar = ColumnarRelation(2, Interner(), rows)

    assert len(columnar) == len(plain) == 3
    assert columnar.rows() == plain.rows()
    assert ("a", 1) in columnar
    assert ("z", 9) not in columnar
    assert sorted(columnar.to_rows()) == sorted(plain.to_rows())
    assert columnar.all_rows() == plain.all_rows()
    assert sorted(columnar.probe((0,), ("a",))) == sorted(plain.probe((0,), ("a",)))
    assert columnar.index_for((0,)) == plain.index_for((0,))


def test_columnar_add_rejects_duplicates_and_wrong_arity():
    rel = ColumnarRelation(2, Interner())
    assert rel.add(("a", "b"))
    assert not rel.add(("a", "b"))
    with pytest.raises(ValueError):
        rel.add(("a",))


def test_columnar_probe_with_unknown_constant_misses():
    rel = ColumnarRelation(2, Interner(), [("a", "b")])
    assert rel.probe((0,), ("never-seen",)) == []


def test_columnar_copy_shares_the_interner():
    interner = Interner()
    rel = ColumnarRelation(2, interner, [("a", "b")])
    clone = rel.copy()
    assert clone.interner is interner
    clone.add(("c", "d"))
    assert len(rel) == 1  # rows are independent...
    assert interner.code_of("c") is not _MISSING  # ...the dictionary is shared


# -------------------------------------------------------------- database
def test_database_storage_selection_and_relation_classes():
    db_rows = Database.from_rows({"e": [(1, 2)]})
    db_col = Database.from_rows({"e": [(1, 2)]}, storage="columnar")
    assert db_rows.storage == "rows"
    assert db_col.storage == "columnar"
    assert isinstance(db_rows.relation("e"), Relation)
    assert isinstance(db_col.relation("e"), ColumnarRelation)
    assert db_rows.interner is None
    assert db_col.interner is not None


def test_unknown_storage_is_rejected():
    with pytest.raises(ValueError):
        Database(storage="parquet")
    with pytest.raises(ValueError):
        Database.from_rows({"e": [(1, 2)]}).to_storage("parquet")


def test_to_storage_round_trip_preserves_every_row():
    _, database, _ = random_workload(3)
    columnar = database.to_storage("columnar")
    back = columnar.to_storage("rows")
    for pred in database.predicates():
        assert columnar.relation(pred).rows() == database.relation(pred).rows()
        assert back.relation(pred).rows() == database.relation(pred).rows()
    # Converting to the storage a database is already in is the identity.
    assert columnar.to_storage("columnar") is columnar


def test_new_relation_shares_the_database_interner():
    db = Database.from_rows({"e": [("a", "b")]}, storage="columnar")
    fresh = db.new_relation(2)
    assert isinstance(fresh, ColumnarRelation)
    assert fresh.interner is db.interner


def test_workload_digest_is_storage_invariant():
    program, database, _ = random_workload(5)
    rows_digest = workload_digest(program, database)
    columnar_digest = workload_digest(program, database.to_storage("columnar"))
    assert rows_digest == columnar_digest


@pytest.mark.parametrize("storage", STORAGES)
def test_fixpoint_digest_is_storage_invariant(storage):
    program, database, _ = random_workload(7)
    baseline = evaluate(program, database.copy())
    result = evaluate(program, database.copy(), storage=storage)
    assert fixpoint_digest([("w", result.idb)]) == fixpoint_digest([("w", baseline.idb)])


# ---------------------------------------------------------- serialization
def test_to_dict_from_dict_round_trips_the_interner():
    db = Database.from_rows({"e": [("a", "b"), ("b", "c")]}, storage="columnar")
    payload = db.to_dict(include_interner=True)
    assert "__interner__" in payload
    restored = Database.from_dict(payload)
    # The interner key marks the payload as columnar; codes reproduce.
    assert restored.storage == "columnar"
    assert restored.relation("e").rows() == db.relation("e").rows()
    assert restored.interner.to_list() == db.interner.to_list()


def test_to_dict_without_interner_is_storage_agnostic():
    db = Database.from_rows({"e": [(1, 2)]}, storage="columnar")
    payload = db.to_dict()
    assert "__interner__" not in payload
    assert Database.from_dict(payload).storage == "rows"
    assert Database.from_dict(payload, storage="columnar").storage == "columnar"


def test_checkpoint_round_trips_the_interner_table():
    program = parse_program(
        "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).", query="t"
    )
    database = Database.from_rows(
        {"e": [("a", "b"), ("b", "c")]}, storage="columnar"
    )
    snapshots = []
    evaluate(
        program,
        database,
        checkpoint_every=1,
        checkpoint_sink=snapshots.append,
    )
    assert snapshots and snapshots[-1].interner is not None
    checkpoint = Checkpoint(
        seq=1, workload=workload_digest(program, database), snapshot=snapshots[-1]
    )
    text, _checksum = checkpoint.encode()
    loaded = Checkpoint.decode(text)
    assert loaded.snapshot.interner == snapshots[-1].interner
    assert loaded.snapshot.idb == snapshots[-1].idb


def test_pre_columnar_checkpoints_load_without_interner():
    """Payloads written before the columnar backend carry no interner
    field and must load as storage-agnostic snapshots."""
    program = parse_program("t(X, Y) :- e(X, Y).", query="t")
    database = Database.from_rows({"e": [(1, 2)]})
    snapshots = []
    evaluate(program, database, checkpoint_every=1, checkpoint_sink=snapshots.append)
    checkpoint = Checkpoint(
        seq=1, workload=workload_digest(program, database), snapshot=snapshots[-1]
    )
    payload = checkpoint.to_payload()
    del payload["snapshot"]["interner"]
    restored = Checkpoint.from_payload(payload)
    assert restored.snapshot.interner is None


@pytest.mark.parametrize("storage", STORAGES)
def test_resume_from_mid_run_snapshot_matches_fresh_run(storage):
    """A snapshot taken mid-fixpoint resumes to the same answers the
    uninterrupted run computes, in either backend — and a columnar
    resume replays the snapshot's interner so code assignment (and the
    resulting fixpoint) is reproduced exactly."""
    program, database, _ = random_workload(11)
    fresh = evaluate(program, database.copy(), storage=storage)

    snapshots = []
    evaluate(
        program,
        database.copy(),
        storage=storage,
        checkpoint_every=1,
        checkpoint_sink=snapshots.append,
    )
    partial = next((s for s in snapshots if not s.complete), snapshots[0])
    if storage == "columnar":
        assert partial.interner is not None
    resumed = evaluate(
        program, database.copy(), storage=storage, resume_from=partial
    )
    assert {p: resumed.rows(p) for p in program.idb_predicates} == {
        p: fresh.rows(p) for p in program.idb_predicates
    }
