"""Hypothesis fuzz: repr of randomly built IR objects parses back equal."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.atoms import COMPARISONS, Atom, Literal, OrderAtom
from repro.datalog.parser import (
    parse_atom,
    parse_constraints,
    parse_program,
    parse_rule,
)
from repro.datalog.program import Program
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

variables = st.sampled_from([Variable(n) for n in ("X", "Y", "Z", "W", "Long_Name0")])
constants = st.one_of(
    st.integers(-50, 50).map(Constant),
    st.sampled_from(["a", "b", "tok", "newYork"]).map(Constant),
    st.sampled_from(["Quoted Value", "Hello World"]).map(Constant),
)
terms = st.one_of(variables, constants)
#: Fixed arities so random programs never mix arities per predicate.
PREDICATE_ARITIES = {"e": 1, "f": 2, "edge": 2, "long_pred2": 3}
predicates = st.sampled_from(sorted(PREDICATE_ARITIES))


@st.composite
def atoms(draw):
    predicate = draw(predicates)
    arity = PREDICATE_ARITIES[predicate]
    args = tuple(draw(terms) for _ in range(arity))
    return Atom(predicate, args)


@st.composite
def order_atoms(draw):
    return OrderAtom(draw(terms), draw(st.sampled_from(list(COMPARISONS))), draw(terms))


@st.composite
def safe_rules(draw):
    """Random safe rules: order/negated vars restricted to positive vars."""
    positives = draw(st.lists(atoms(), min_size=1, max_size=3))
    bound = sorted(
        {v for atom in positives for v in atom.variables()}, key=lambda v: v.name
    )
    body = [Literal(a) for a in positives]
    if bound:
        bound_terms = st.one_of(st.sampled_from(bound), constants)
        for _ in range(draw(st.integers(0, 2))):
            body.append(
                OrderAtom(
                    draw(bound_terms),
                    draw(st.sampled_from(list(COMPARISONS))),
                    draw(bound_terms),
                )
            )
        if draw(st.booleans()):
            negated_args = (draw(bound_terms), draw(bound_terms))
            body.append(Literal(Atom("neg_pred", negated_args), positive=False))
        head_pool = st.one_of(st.sampled_from(bound), constants)
        head_args = (draw(head_pool), draw(head_pool))
    else:
        head_args = (draw(constants), draw(constants))
    return Rule(Atom("head_p", head_args), tuple(body))


@settings(max_examples=150, deadline=None)
@given(atoms())
def test_atom_roundtrip(atom):
    assert parse_atom(repr(atom)) == atom


@settings(max_examples=150, deadline=None)
@given(safe_rules())
def test_rule_roundtrip(rule):
    assert parse_rule(repr(rule)) == rule


@settings(max_examples=80, deadline=None)
@given(st.lists(safe_rules(), min_size=1, max_size=4))
def test_program_roundtrip(rules):
    program = Program(rules)
    assert parse_program(repr(program)).rules == program.rules


@settings(max_examples=80, deadline=None)
@given(safe_rules())
def test_constraint_roundtrip(rule):
    from repro.constraints.integrity import IntegrityConstraint

    constraint = IntegrityConstraint(rule.body)
    parsed = parse_constraints(repr(constraint))
    assert parsed == [constraint]
