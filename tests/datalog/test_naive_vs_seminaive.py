"""The naive evaluator as a correctness oracle for the semi-naive one."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program

PROGRAMS = {
    "tc": """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- e(X, Z), t(Z, Y).
    """,
    "nonlinear_tc": """
        t(X, Y) :- e(X, Y).
        t(X, Y) :- t(X, Z), t(Z, Y).
    """,
    "mutual": """
        even(X) :- zero(X).
        even(Y) :- succ(X, Y), odd(X).
        odd(Y) :- succ(X, Y), even(X).
    """,
    "negation_and_order": """
        up(X, Y) :- e(X, Y), X < Y, not blocked(X).
        up(X, Y) :- e(X, Z), X < Z, up(Z, Y).
    """,
}


def _random_database(seed: int) -> Database:
    rng = random.Random(seed)
    return Database.from_rows(
        {
            "e": {(rng.randint(0, 5), rng.randint(0, 5)) for _ in range(10)},
            "zero": [(0,)],
            "succ": [(i, i + 1) for i in range(5)],
            "blocked": {(rng.randint(0, 5),) for _ in range(2)},
        }
    )


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_strategies_agree(name, seed):
    program = parse_program(PROGRAMS[name])
    database = _random_database(seed)
    semi = evaluate(program, database, strategy="seminaive")
    naive = evaluate(program, database, strategy="naive")
    for predicate in program.idb_predicates:
        assert semi.rows(predicate) == naive.rows(predicate)


def test_seminaive_does_less_work_on_chains():
    program = parse_program(PROGRAMS["tc"])
    database = Database.from_rows({"e": [(i, i + 1) for i in range(30)]})
    semi = evaluate(program, database, strategy="seminaive")
    naive = evaluate(program, database, strategy="naive")
    assert semi.rows("t") == naive.rows("t")
    assert semi.stats.rows_scanned < naive.stats.rows_scanned


def test_unknown_strategy_rejected():
    program = parse_program(PROGRAMS["tc"])
    with pytest.raises(ValueError):
        evaluate(program, Database(), strategy="magic")


def test_naive_provenance_works():
    from repro.datalog.evaluation import derivation_tree

    program = parse_program(PROGRAMS["tc"], query="t")
    database = Database.from_rows({"e": [(1, 2), (2, 3)]})
    result = evaluate(program, database, strategy="naive", provenance=True)
    tree = derivation_tree(result, "t", (1, 3))
    assert {(l.predicate, l.row) for l in tree.leaves()} == {
        ("e", (1, 2)),
        ("e", (2, 3)),
    }
