"""EvaluationStats: as_dict parity, merge, and compare's zero guards."""

import math

from repro.datalog.evaluation import EvaluationStats


def _stats(**overrides):
    base = dict(
        rule_firings=4,
        probes=10,
        rows_scanned=20,
        facts_derived=8,
        iterations=3,
        index_builds=2,
        env_allocations=6,
    )
    base.update(overrides)
    return EvaluationStats(**base)


def test_as_dict_covers_every_counter_including_iterations():
    stats = _stats(rows_scanned_by_rule={"r": 20})
    payload = stats.as_dict()
    # Parity with the dataclass fields: nothing missing, nothing extra.
    assert payload == {
        "rule_firings": 4,
        "probes": 10,
        "rows_scanned": 20,
        "facts_derived": 8,
        "iterations": 3,
        "index_builds": 2,
        "env_allocations": 6,
        "intern_hits": 0,
        "block_probes": 0,
        "budget_trips": 0,
        "wall_time_seconds": 0.0,
        "worker_restarts": 0,
        "shards_redispatched": 0,
        "degradations": 0,
        "rows_scanned_by_rule": {"r": 20},
    }
    assert set(payload) == set(EvaluationStats.__dataclass_fields__)


def test_as_dict_copies_the_per_rule_breakdown():
    stats = _stats(rows_scanned_by_rule={"r": 20})
    payload = stats.as_dict()
    payload["rows_scanned_by_rule"]["r"] = 999
    assert stats.rows_scanned_by_rule == {"r": 20}


def test_merge_sums_every_counter():
    left = _stats(
        rows_scanned_by_rule={"r": 5, "s": 1},
        budget_trips=1,
        wall_time_seconds=0.25,
    )
    left.merge(
        _stats(
            iterations=5,
            rows_scanned_by_rule={"r": 2, "t": 3},
            intern_hits=7,
            block_probes=4,
            budget_trips=2,
            wall_time_seconds=0.5,
        )
    )
    assert left.as_dict() == {
        "rule_firings": 8,
        "probes": 20,
        "rows_scanned": 40,
        "facts_derived": 16,
        "iterations": 8,
        "index_builds": 4,
        "env_allocations": 12,
        "intern_hits": 7,
        "block_probes": 4,
        "budget_trips": 3,
        "wall_time_seconds": 0.75,
        "worker_restarts": 0,
        "shards_redispatched": 0,
        "degradations": 0,
        "rows_scanned_by_rule": {"r": 7, "s": 1, "t": 3},
    }


def test_merge_is_order_independent():
    """Sharded evaluation merges per-worker stats in arrival order,
    which varies run to run — the merged result (including the float
    wall time, summed in integer nanoseconds, and the per-rule dict's
    insertion order) must not depend on it."""
    import random

    parts = [
        _stats(
            rule_firings=i,
            probes=i * 3,
            rows_scanned=i * 7,
            facts_derived=i * 2,
            iterations=i,
            wall_time_seconds=0.1 * i + 1e-9 * i,
            budget_trips=i % 2,
            rows_scanned_by_rule={f"r{i % 3}": i, f"s{i % 5}": 2 * i},
        )
        for i in range(12)
    ]
    reference = None
    rng = random.Random(0)
    for _ in range(20):
        order = parts[:]
        rng.shuffle(order)
        merged = EvaluationStats()
        for part in order:
            merged.merge(part)
        payload = merged.as_dict()
        # Bitwise equality, including the float and dict key order.
        if reference is None:
            reference = payload
        assert payload == reference
        assert list(payload["rows_scanned_by_rule"]) == sorted(
            payload["rows_scanned_by_rule"]
        )
        assert merged.wall_time_seconds == reference["wall_time_seconds"]


def test_compare_ratios():
    baseline = _stats(budget_trips=2)
    half = EvaluationStats(
        rule_firings=2,
        probes=5,
        rows_scanned=10,
        facts_derived=4,
        iterations=3,
        index_builds=1,
        env_allocations=3,
        budget_trips=1,
    )
    ratios = baseline.compare(half)
    assert ratios["probes"] == 0.5
    assert ratios["index_builds"] == 0.5
    assert ratios["env_allocations"] == 0.5
    assert ratios["iterations"] == 1.0
    assert ratios["budget_trips"] == 0.5
    # Integer counters only: the per-rule dict has no meaningful ratio,
    # and wall time is a float too noisy to compare as a work ratio.
    assert set(ratios) == set(baseline.as_dict()) - {
        "rows_scanned_by_rule",
        "wall_time_seconds",
    }


def test_compare_zero_baseline_never_divides_by_zero():
    empty = EvaluationStats()
    other = _stats()
    ratios = empty.compare(other)
    # 0/0 -> 1.0 (no change), n/0 -> inf, and never an exception.
    # budget_trips, intern_hits, block_probes and the recovery counters
    # are zero on both sides here, so their ratios are 1.0.
    zero_on_both = {
        "budget_trips",
        "intern_hits",
        "block_probes",
        "worker_restarts",
        "shards_redispatched",
        "degradations",
    }
    for key in zero_on_both:
        assert ratios[key] == 1.0
    assert all(
        math.isinf(value)
        for key, value in ratios.items()
        if key not in zero_on_both
    )
    assert empty.compare(EvaluationStats()) == {
        "rule_firings": 1.0,
        "probes": 1.0,
        "rows_scanned": 1.0,
        "facts_derived": 1.0,
        "iterations": 1.0,
        "index_builds": 1.0,
        "env_allocations": 1.0,
        "intern_hits": 1.0,
        "block_probes": 1.0,
        "budget_trips": 1.0,
        "worker_restarts": 1.0,
        "shards_redispatched": 1.0,
        "degradations": 1.0,
    }


def test_compare_zero_guard_covers_storage_counters():
    """The PR 4 zero-guard, re-asserted for the columnar counters: a
    rows-backend baseline has zero intern_hits/block_probes, and
    comparing a columnar run against it must yield inf, not raise."""
    rows_baseline = _stats()  # intern_hits == block_probes == 0
    columnar = _stats(intern_hits=12, block_probes=9)
    ratios = rows_baseline.compare(columnar)
    assert math.isinf(ratios["intern_hits"])
    assert math.isinf(ratios["block_probes"])
    # And the reverse direction divides normally.
    back = columnar.compare(rows_baseline)
    assert back["intern_hits"] == 0.0
    assert back["block_probes"] == 0.0


def test_compare_mixed_zero_and_nonzero_counters():
    baseline = EvaluationStats(rule_firings=0, probes=10)
    other = EvaluationStats(rule_firings=3, probes=0)
    ratios = baseline.compare(other)
    assert math.isinf(ratios["rule_firings"])
    assert ratios["probes"] == 0.0
    assert ratios["iterations"] == 1.0


def test_from_dict_round_trips_as_dict():
    stats = _stats(
        rows_scanned_by_rule={"r": 20}, budget_trips=1, wall_time_seconds=0.5
    )
    restored = EvaluationStats.from_dict(stats.as_dict())
    assert restored.as_dict() == stats.as_dict()


def test_from_dict_tolerates_missing_newer_fields():
    """Checkpoints written by an older build lack newer counters; they
    must load with zero defaults, not crash."""
    payload = _stats().as_dict()
    for key in ("budget_trips", "wall_time_seconds", "rows_scanned_by_rule"):
        del payload[key]
    restored = EvaluationStats.from_dict(payload)
    assert restored.budget_trips == 0
    assert restored.wall_time_seconds == 0.0
    assert restored.rows_scanned_by_rule == {}
    assert restored.rule_firings == 4


def test_merge_tolerates_stats_missing_newer_fields():
    class OldStats:
        """Stand-in for stats deserialized from an older checkpoint."""

        rule_firings = 3
        probes = 1
        rows_scanned = 2
        facts_derived = 1
        iterations = 1
        index_builds = 0
        env_allocations = 0
        # no budget_trips / wall_time_seconds / rows_scanned_by_rule

    current = _stats(budget_trips=2, wall_time_seconds=0.25)
    current.merge(OldStats())
    assert current.rule_firings == 7
    assert current.budget_trips == 2  # missing field treated as zero
    assert current.wall_time_seconds == 0.25


def test_compare_tolerates_dict_missing_newer_fields():
    baseline = _stats(budget_trips=2)
    ratios = baseline.compare(_stats())
    assert ratios["budget_trips"] == 0.0  # other side defaults to zero


def test_copy_is_independent():
    stats = _stats(rows_scanned_by_rule={"r": 5})
    clone = stats.copy()
    clone.rule_firings += 1
    clone.rows_scanned_by_rule["r"] = 99
    assert stats.rule_firings == 4
    assert stats.rows_scanned_by_rule == {"r": 5}
    assert clone.as_dict() != stats.as_dict()


def test_wall_time_is_populated_by_evaluate():
    from repro.datalog.database import Database
    from repro.datalog.evaluation import evaluate
    from repro.datalog.parser import parse_program

    program = parse_program(
        "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).", query="t"
    )
    database = Database.from_rows({"e": [(1, 2), (2, 3)]})
    result = evaluate(program, database)
    assert result.stats.wall_time_seconds > 0.0
    assert result.stats.budget_trips == 0
