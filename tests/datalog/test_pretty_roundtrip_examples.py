"""Satellite round-trip: ``parse(pretty(program)) == program`` for every
program an example script or workload factory produces."""

import importlib.util
from pathlib import Path

import pytest

from repro.datalog.parser import parse_program
from repro.datalog.pretty import format_program
from repro.datalog.program import Program
from repro.workloads import (
    ab_transitive_closure,
    flight_routes,
    good_path,
    good_path_order_constraints,
    random_program,
    same_generation,
    taint_analysis,
)

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FACTORIES = {
    "ab": ab_transitive_closure,
    "flight": flight_routes,
    "goodPath": good_path,
    "goodPathOrder": good_path_order_constraints,
    "sg": same_generation,
    "taint": taint_analysis,
}


def _module_programs(path):
    """Import an example script and harvest module-level Programs."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return [
        value for value in vars(module).values() if isinstance(value, Program)
    ]


def _assert_roundtrip(program):
    text = format_program(program)
    reparsed = parse_program(text, query=program.query)
    assert reparsed.rules == program.rules
    assert reparsed.query == program.query


@pytest.mark.parametrize(
    "path", sorted(EXAMPLES_DIR.glob("*.py")), ids=lambda p: p.stem
)
def test_example_scripts_roundtrip(path):
    programs = _module_programs(path)
    for program in programs:
        _assert_roundtrip(program)


def test_quickstart_defines_a_module_level_program():
    assert _module_programs(EXAMPLES_DIR / "quickstart.py")


@pytest.mark.parametrize("name", sorted(FACTORIES), ids=str)
def test_workload_programs_roundtrip(name):
    program, _ = FACTORIES[name]()
    _assert_roundtrip(program)


@pytest.mark.parametrize("seed", range(10))
def test_random_programs_roundtrip(seed):
    _assert_roundtrip(random_program(seed))
