"""Unification and matching tests."""

from repro.datalog.atoms import Atom
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import match_atom, unify_atoms, unify_terms

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestUnifyAtoms:
    def test_basic(self):
        theta = unify_atoms(parse_atom("e(X, Y)"), parse_atom("e(a, Z)"))
        assert theta is not None
        assert theta.apply(X) == Constant("a")
        assert theta.apply(Y) == theta.apply(Z)

    def test_predicate_mismatch(self):
        assert unify_atoms(parse_atom("e(X)"), parse_atom("f(X)")) is None

    def test_arity_mismatch(self):
        assert unify_atoms(parse_atom("e(X)"), parse_atom("e(X, Y)")) is None

    def test_constant_clash(self):
        assert unify_atoms(parse_atom("e(1, X)"), parse_atom("e(2, Y)")) is None

    def test_repeated_variable_forces_equality(self):
        theta = unify_atoms(parse_atom("e(X, X)"), parse_atom("e(1, Y)"))
        assert theta is not None
        assert theta.apply(X) == Constant(1)
        assert theta.apply(Y) == Constant(1)

    def test_unification_result_unifies(self):
        first, second = parse_atom("e(X, Y, X)"), parse_atom("e(Z, 3, W)")
        theta = unify_atoms(first, second)
        assert theta is not None
        assert first.substitute(theta) == second.substitute(theta)

    def test_cross_constant_via_chain(self):
        assert unify_terms([(X, Constant(1)), (X, Y), (Y, Constant(2))]) is None
        theta = unify_terms([(X, Constant(1)), (X, Y)])
        assert theta is not None and theta.apply(Y) == Constant(1)


class TestMatchAtom:
    def test_matching_one_way(self):
        theta = match_atom(parse_atom("e(X, Y)"), parse_atom("e(1, 2)"))
        assert theta is not None
        assert theta.apply(X) == Constant(1)

    def test_target_variables_frozen(self):
        # X in the target is a frozen name, not unifiable with a constant.
        assert match_atom(parse_atom("e(1)"), parse_atom("e(X)")) is None

    def test_repeated_pattern_variable(self):
        assert match_atom(parse_atom("e(X, X)"), parse_atom("e(1, 2)")) is None
        theta = match_atom(parse_atom("e(X, X)"), parse_atom("e(1, 1)"))
        assert theta is not None

    def test_pattern_constant_must_match(self):
        assert match_atom(parse_atom("e(1, X)"), parse_atom("e(2, 3)")) is None
