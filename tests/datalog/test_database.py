"""Storage-layer tests: relations, indexes, databases."""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.database import Database, Relation
from repro.datalog.terms import Constant


class TestRelation:
    def test_add_and_contains(self):
        rel = Relation(2)
        assert rel.add((1, 2))
        assert not rel.add((1, 2))  # duplicate
        assert (1, 2) in rel
        assert (2, 1) not in rel
        assert len(rel) == 1

    def test_arity_checked(self):
        rel = Relation(2)
        with pytest.raises(ValueError):
            rel.add((1,))

    def test_probe_full_scan(self):
        rel = Relation(2, [(1, 2), (3, 4)])
        assert sorted(rel.probe((), ())) == [(1, 2), (3, 4)]

    def test_probe_full_scan_builds_no_degenerate_index(self):
        rel = Relation(2, [(1, 2), (3, 4)])
        rel.probe((), ())
        assert not rel.has_index(())  # no empty-keyed index cached

    def test_index_for_caches_and_counts_builds(self):
        class Stats:
            index_builds = 0

        stats = Stats()
        rel = Relation(2, [(1, 2), (1, 3), (2, 3)])
        index = rel.index_for((0,), stats)
        assert sorted(index[(1,)]) == [(1, 2), (1, 3)]
        assert stats.index_builds == 1
        assert rel.has_index((0,))
        # Cached: a second fetch builds nothing.
        assert rel.index_for((0,), stats) is index
        assert stats.index_builds == 1

    def test_index_for_rejects_empty_positions(self):
        rel = Relation(2, [(1, 2)])
        with pytest.raises(ValueError):
            rel.index_for(())

    def test_all_rows_is_the_live_row_set(self):
        rel = Relation(1, [(1,)])
        rows = rel.all_rows()
        assert rows == {(1,)}
        rel.add((2,))
        assert rows == {(1,), (2,)}

    def test_probe_indexed(self):
        rel = Relation(2, [(1, 2), (1, 3), (2, 3)])
        assert sorted(rel.probe((0,), (1,))) == [(1, 2), (1, 3)]
        assert rel.probe((0, 1), (2, 3)) == [(2, 3)]
        assert rel.probe((1,), (9,)) == []

    def test_index_updated_on_insert(self):
        rel = Relation(2, [(1, 2)])
        assert rel.probe((0,), (1,)) == [(1, 2)]  # builds the index
        rel.add((1, 5))
        assert sorted(rel.probe((0,), (1,))) == [(1, 2), (1, 5)]

    def test_copy_independent(self):
        rel = Relation(1, [(1,)])
        clone = rel.copy()
        clone.add((2,))
        assert len(rel) == 1 and len(clone) == 2

    def test_zero_arity(self):
        rel = Relation(0)
        rel.add(())
        assert () in rel and len(rel) == 1


class TestDatabase:
    def test_add_fact_and_contains(self):
        db = Database([Atom("e", (Constant(1), Constant(2)))])
        assert db.contains("e", (1, 2))
        assert not db.contains("e", (2, 1))
        assert not db.contains("missing", (1,))

    def test_nonground_fact_rejected(self):
        from repro.datalog.terms import Variable

        with pytest.raises(ValueError):
            Database([Atom("e", (Variable("X"),))])

    def test_from_rows(self):
        db = Database.from_rows({"e": [(1, 2), (2, 3)], "v": [(1,)]})
        assert db.size() == 3
        assert db.predicates() == {"e", "v"}

    def test_relation_missing_needs_arity(self):
        db = Database()
        with pytest.raises(KeyError):
            db.relation("nope")
        assert len(db.relation("nope", 2)) == 0

    def test_facts_iteration_ground(self):
        db = Database.from_rows({"e": [(1, 2)]})
        facts = list(db.facts())
        assert facts == [Atom("e", (Constant(1), Constant(2)))]

    def test_copy_independent(self):
        db = Database.from_rows({"e": [(1, 2)]})
        clone = db.copy()
        clone.add_row("e", (3, 4))
        assert db.size() == 1 and clone.size() == 2


class TestSerialization:
    def test_relation_to_rows_sorted_and_stable(self):
        rel = Relation(2, [(3, 4), (1, 2), (1, 10)])
        rows = rel.to_rows()
        assert rows == sorted(rel.rows(), key=repr)
        assert rows == rel.to_rows()  # deterministic across calls
        rows.append((9, 9))  # a copy, not the live row set
        assert (9, 9) not in rel

    def test_database_round_trip(self):
        db = Database.from_rows(
            {"e": [(1, 2), (2, 3)], "label": [("a", 1)], "flag": [()]}
        )
        payload = db.to_dict()
        restored = Database.from_dict(payload)
        assert restored.predicates() == db.predicates()
        for pred in db.predicates():
            assert restored.relation(pred).rows() == db.relation(pred).rows()
            assert restored.relation(pred).arity == db.relation(pred).arity

    def test_to_dict_is_json_ready(self):
        import json

        db = Database.from_rows({"e": [(1, 2)], "name": [("x",)]})
        text = json.dumps(db.to_dict(), sort_keys=True)
        restored = Database.from_dict(json.loads(text))
        assert restored.relation("e").rows() == {(1, 2)}
        assert restored.relation("name").rows() == {("x",)}
        # deterministic: same database, same serialization
        assert json.dumps(db.to_dict(), sort_keys=True) == text

    def test_empty_relation_survives_round_trip_with_arity(self):
        payload = {"empty": {"arity": 3, "rows": []}}
        restored = Database.from_dict(payload)
        assert restored.relation("empty").arity == 3
        assert len(restored.relation("empty")) == 0
        assert restored.to_dict() == payload
