"""Evaluation-engine tests: semi-naive correctness, negation, order atoms,
provenance, statistics — cross-validated against networkx reachability."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.database import Database
from repro.datalog.evaluation import derivation_tree, evaluate, evaluate_query
from repro.datalog.parser import parse_facts, parse_program

TC = parse_program(
    """
    t(X, Y) :- e(X, Y).
    t(X, Y) :- e(X, Z), t(Z, Y).
    """,
    query="t",
)


def edges_db(edges):
    return Database.from_rows({"e": edges})


class TestTransitiveClosure:
    def test_chain(self):
        rows = evaluate_query(TC, edges_db([(1, 2), (2, 3), (3, 4)]))
        assert rows == {(1, 2), (2, 3), (3, 4), (1, 3), (2, 4), (1, 4)}

    def test_cycle_terminates(self):
        rows = evaluate_query(TC, edges_db([(1, 2), (2, 1)]))
        assert rows == {(1, 2), (2, 1), (1, 1), (2, 2)}

    def test_empty_edb(self):
        assert evaluate_query(TC, Database()) == frozenset()

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7)),
            max_size=25,
        )
    )
    def test_matches_networkx(self, edges):
        rows = evaluate_query(TC, edges_db(edges))
        closure = nx.transitive_closure(nx.DiGraph(edges), reflexive=False)
        assert rows == set(closure.edges)


class TestNegationAndOrder:
    def test_safe_negation(self):
        program = parse_program(
            "p(X) :- v(X), not blocked(X).", query="p"
        )
        db = Database.from_rows({"v": [(1,), (2,)], "blocked": [(2,)]})
        assert evaluate_query(program, db) == {(1,)}

    def test_negated_predicate_absent_from_edb(self):
        program = parse_program("p(X) :- v(X), not blocked(X).", query="p")
        db = Database.from_rows({"v": [(1,)]})
        assert evaluate_query(program, db) == {(1,)}

    def test_order_filter(self):
        program = parse_program("p(X, Y) :- e(X, Y), X < Y.", query="p")
        db = edges_db([(1, 2), (3, 2), (5, 5)])
        assert evaluate_query(program, db) == {(1, 2)}

    def test_order_with_constant(self):
        program = parse_program("p(X) :- v(X), X >= 10.", query="p")
        db = Database.from_rows({"v": [(5,), (10,), (20,)]})
        assert evaluate_query(program, db) == {(10,), (20,)}

    def test_order_inside_recursion(self):
        program = parse_program(
            """
            up(X, Y) :- e(X, Y), X < Y.
            up(X, Y) :- e(X, Z), X < Z, up(Z, Y).
            """,
            query="up",
        )
        db = edges_db([(1, 2), (2, 3), (3, 1)])
        assert evaluate_query(program, db) == {(1, 2), (2, 3), (1, 3)}

    def test_equality_join(self):
        program = parse_program("p(X) :- v(X), X = 3.", query="p")
        db = Database.from_rows({"v": [(3,), (4,)]})
        assert evaluate_query(program, db) == {(3,)}


class TestStratifiedHierarchy:
    def test_idb_on_idb(self):
        program = parse_program(
            """
            t(X, Y) :- e(X, Y).
            t(X, Y) :- e(X, Z), t(Z, Y).
            roundtrip(X) :- t(X, X).
            answer(X) :- roundtrip(X), mark(X).
            """,
            query="answer",
        )
        db = Database.from_rows({"e": [(1, 2), (2, 1), (3, 4)], "mark": [(1,), (3,)]})
        assert evaluate_query(program, db) == {(1,)}

    def test_mutual_recursion(self):
        program = parse_program(
            """
            even(X) :- zero(X).
            even(Y) :- succ(X, Y), odd(X).
            odd(Y) :- succ(X, Y), even(X).
            """,
            query="even",
        )
        db = Database.from_rows(
            {"zero": [(0,)], "succ": [(i, i + 1) for i in range(6)]}
        )
        assert evaluate_query(program, db) == {(0,), (2,), (4,), (6,)}

    def test_zero_arity_head(self):
        program = parse_program("found() :- e(X, Y), X < Y.", query="found")
        assert evaluate_query(program, edges_db([(2, 1)])) == frozenset()
        assert evaluate_query(program, edges_db([(1, 2)])) == {()}


class TestConstantsInRules:
    def test_constant_in_body(self):
        program = parse_program("p(X) :- e(1, X).", query="p")
        assert evaluate_query(program, edges_db([(1, 5), (2, 6)])) == {(5,)}

    def test_constant_in_head(self):
        program = parse_program("p(7, X) :- v(X).", query="p")
        db = Database.from_rows({"v": [(1,)]})
        assert evaluate_query(program, db) == {(7, 1)}


class TestStatsAndProvenance:
    def test_stats_counters_move(self):
        result = evaluate(TC, edges_db([(1, 2), (2, 3), (3, 4)]))
        assert result.stats.facts_derived == 6
        assert result.stats.probes > 0
        assert result.stats.rows_scanned > 0
        assert result.stats.iterations >= 2

    def test_provenance_tree_structure(self):
        result = evaluate(TC, edges_db([(1, 2), (2, 3)]), provenance=True)
        tree = derivation_tree(result, "t", (1, 3))
        assert tree.predicate == "t" and tree.row == (1, 3)
        leaves = {(leaf.predicate, leaf.row) for leaf in tree.leaves()}
        assert leaves == {("e", (1, 2)), ("e", (2, 3))}
        assert len(tree.goal_nodes()) >= 3

    def test_provenance_requires_flag(self):
        result = evaluate(TC, edges_db([(1, 2)]))
        with pytest.raises(ValueError):
            derivation_tree(result, "t", (1, 2))

    def test_derivation_of_underived_fact(self):
        result = evaluate(TC, edges_db([(1, 2)]), provenance=True)
        with pytest.raises(KeyError):
            derivation_tree(result, "t", (9, 9))

    def test_render_contains_leaf(self):
        result = evaluate(TC, edges_db([(1, 2)]), provenance=True)
        text = derivation_tree(result, "t", (1, 2)).render()
        assert "e(1, 2)" in text


class TestResultAccessors:
    def test_unknown_predicate(self):
        result = evaluate(TC, Database())
        with pytest.raises(KeyError):
            result.relation("missing")

    def test_query_rows_requires_query(self):
        program = parse_program("p(X) :- e(X, X).")
        result = evaluate(program, Database())
        with pytest.raises(ValueError):
            result.query_rows()

    def test_relation_of_underived_idb_is_empty(self):
        result = evaluate(TC, Database())
        assert len(result.relation("t")) == 0
