"""Pretty-printer tests."""

from repro.datalog.parser import parse_constraints, parse_program, parse_rule
from repro.datalog.pretty import (
    format_constraints,
    format_program,
    format_rule,
    format_rules,
)


class TestFormatting:
    def test_format_rule_with_indent(self):
        rule = parse_rule("p(X) :- e(X, Y), X < Y.")
        assert format_rule(rule, indent="  ") == "  p(X) :- e(X, Y), X < Y."

    def test_format_rules_one_per_line(self):
        rules = [parse_rule("p(X) :- e(X)."), parse_rule("q(X) :- p(X).")]
        text = format_rules(rules)
        assert text.splitlines() == ["p(X) :- e(X).", "q(X) :- p(X)."]

    def test_format_program_groups_by_head(self):
        program = parse_program(
            """
            p(X) :- e(X).
            p(X) :- f(X).
            q(X) :- p(X).
            """,
            query="q",
        )
        text = format_program(program)
        lines = text.splitlines()
        # A blank line between the p-group and the q-group.
        assert "" in lines
        assert lines[-1] == "% query: q"

    def test_format_program_header(self):
        program = parse_program("p(X) :- e(X).")
        assert format_program(program, header="demo").startswith("% demo")

    def test_format_constraints(self):
        constraints = parse_constraints(":- a(X), b(X). :- c(X), X < 3.")
        text = format_constraints(constraints)
        assert text.splitlines() == [":- a(X), b(X).", ":- c(X), X < 3."]

    def test_formatted_program_parses_back(self):
        program = parse_program(
            "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).", query="p"
        )
        again = parse_program(format_program(program))
        assert again.rules == program.rules
