"""Evaluation edge cases not covered by the main engine tests."""

import pytest

from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_facts, parse_program


class TestMaxIterations:
    def test_bounded_iterations_truncate_closure(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).", query="t"
        )
        db = Database.from_rows({"e": [(i, i + 1) for i in range(10)]})
        full = evaluate(program, db)
        bounded = evaluate(program, db, max_iterations=2)
        assert bounded.rows("t") < full.rows("t")

    def test_unbounded_by_default(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).", query="t"
        )
        db = Database.from_rows({"e": [(i, i + 1) for i in range(10)]})
        assert len(evaluate(program, db).rows("t")) == 55


class TestDuplicateBodyItems:
    def test_repeated_literal_harmless(self):
        program = parse_program("q(X) :- e(X, Y), e(X, Y).", query="q")
        db = Database.from_rows({"e": [(1, 2)]})
        assert evaluate(program, db).query_rows() == {(1,)}

    def test_contradictory_filters_empty(self):
        program = parse_program("q(X) :- e(X, Y), X < Y, Y < X.", query="q")
        db = Database.from_rows({"e": [(1, 2)]})
        assert evaluate(program, db).query_rows() == frozenset()


class TestGroundRules:
    def test_fact_rule_derives(self):
        program = parse_program("q(1, 2). q(X, Y) :- e(X, Y).", query="q")
        db = Database.from_rows({"e": [(5, 6)]})
        assert evaluate(program, db).query_rows() == {(1, 2), (5, 6)}

    def test_ground_order_atom_filter(self):
        program = parse_program("q(X) :- e(X), 1 < 2.", query="q")
        db = Database.from_rows({"e": [(1,)]})
        assert evaluate(program, db).query_rows() == {(1,)}
        program2 = parse_program("q(X) :- e(X), 2 < 1.", query="q")
        assert evaluate(program2, db).query_rows() == frozenset()


class TestStringValues:
    def test_string_constants_flow(self):
        program = parse_program('q(X) :- name(X, "New York").', query="q")
        db = Database(parse_facts('name(1, "New York"). name(2, "Boston").'))
        assert evaluate(program, db).query_rows() == {(1,)}

    def test_string_order_comparison(self):
        program = parse_program("q(X) :- tag(X, T), T < zz.", query="q")
        db = Database(parse_facts("tag(1, aa). tag(2, zzz)."))
        assert evaluate(program, db).query_rows() == {(1,)}

    def test_mixed_type_comparison_raises(self):
        program = parse_program("q(X) :- tag(X, T), T < 5.", query="q")
        db = Database(parse_facts("tag(1, aa)."))
        with pytest.raises(TypeError):
            evaluate(program, db)
