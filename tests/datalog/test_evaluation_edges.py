"""Evaluation edge cases not covered by the main engine tests."""

import pytest

from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_facts, parse_program


class TestMaxIterations:
    def test_bounded_iterations_truncate_closure(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).", query="t"
        )
        db = Database.from_rows({"e": [(i, i + 1) for i in range(10)]})
        full = evaluate(program, db)
        bounded = evaluate(program, db, max_iterations=2)
        assert bounded.rows("t") < full.rows("t")

    def test_unbounded_by_default(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).", query="t"
        )
        db = Database.from_rows({"e": [(i, i + 1) for i in range(10)]})
        assert len(evaluate(program, db).rows("t")) == 55

    @pytest.mark.parametrize("engine", ["slots", "interpreted"])
    def test_exact_boundary_round_reaches_the_fixpoint(self, engine):
        # The bound is on *completed* rounds: a fixpoint that needs
        # exactly N rounds is reached under max_iterations=N, and only
        # N-1 truncates it.
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).", query="t"
        )
        db = Database.from_rows({"e": [(i, i + 1) for i in range(10)]})
        full = evaluate(program, db, engine=engine)
        # The last semi-naive round only confirms the empty delta, so
        # the last *productive* round is rounds - 1.
        productive = full.stats.iterations - 1
        assert productive > 1
        at_boundary = evaluate(program, db, engine=engine, max_iterations=productive)
        assert at_boundary.rows("t") == full.rows("t")
        truncated = evaluate(
            program, db, engine=engine, max_iterations=productive - 1
        )
        assert truncated.rows("t") < full.rows("t")

    @pytest.mark.parametrize("engine", ["slots", "interpreted"])
    def test_bound_resets_per_scc(self, engine):
        # Two independent recursive SCCs, each needing R rounds.  The
        # legacy bound is per-SCC, so max_iterations=R still reaches the
        # full fixpoint even though 2R rounds ran in total — unlike the
        # governed Budget.max_iterations, which bounds the total.
        program = parse_program(
            """
            t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).
            u(X, Y) :- f(X, Y). u(X, Y) :- f(X, Z), u(Z, Y).
            """,
            query="t",
        )
        rows = [(i, i + 1) for i in range(10)]
        db = Database.from_rows({"e": rows, "f": rows})
        full = evaluate(program, db, engine=engine)
        per_scc = full.stats.iterations // 2
        assert full.stats.iterations == 2 * per_scc  # symmetric SCCs
        bounded = evaluate(program, db, engine=engine, max_iterations=per_scc)
        assert bounded.rows("t") == full.rows("t")
        assert bounded.rows("u") == full.rows("u")

    def test_governed_budget_bounds_total_rounds_instead(self):
        from repro.robustness import Budget, BudgetExceededError

        program = parse_program(
            """
            t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).
            u(X, Y) :- f(X, Y). u(X, Y) :- f(X, Z), u(Z, Y).
            """,
            query="t",
        )
        rows = [(i, i + 1) for i in range(10)]
        db = Database.from_rows({"e": rows, "f": rows})
        per_scc = evaluate(program, db).stats.iterations // 2
        with pytest.raises(BudgetExceededError):
            evaluate(program, db, budget=Budget(max_iterations=per_scc))

    def test_truncation_is_silent_and_partial_is_monotone(self):
        # The legacy keyword never raises; deeper bounds only add facts.
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).", query="t"
        )
        db = Database.from_rows({"e": [(i, i + 1) for i in range(10)]})
        previous = frozenset()
        for bound in (1, 2, 3, 4):
            rows = evaluate(program, db, max_iterations=bound).rows("t")
            assert previous <= rows
            previous = rows


class TestDuplicateBodyItems:
    def test_repeated_literal_harmless(self):
        program = parse_program("q(X) :- e(X, Y), e(X, Y).", query="q")
        db = Database.from_rows({"e": [(1, 2)]})
        assert evaluate(program, db).query_rows() == {(1,)}

    def test_contradictory_filters_empty(self):
        program = parse_program("q(X) :- e(X, Y), X < Y, Y < X.", query="q")
        db = Database.from_rows({"e": [(1, 2)]})
        assert evaluate(program, db).query_rows() == frozenset()


class TestGroundRules:
    def test_fact_rule_derives(self):
        program = parse_program("q(1, 2). q(X, Y) :- e(X, Y).", query="q")
        db = Database.from_rows({"e": [(5, 6)]})
        assert evaluate(program, db).query_rows() == {(1, 2), (5, 6)}

    def test_ground_order_atom_filter(self):
        program = parse_program("q(X) :- e(X), 1 < 2.", query="q")
        db = Database.from_rows({"e": [(1,)]})
        assert evaluate(program, db).query_rows() == {(1,)}
        program2 = parse_program("q(X) :- e(X), 2 < 1.", query="q")
        assert evaluate(program2, db).query_rows() == frozenset()


class TestStringValues:
    def test_string_constants_flow(self):
        program = parse_program('q(X) :- name(X, "New York").', query="q")
        db = Database(parse_facts('name(1, "New York"). name(2, "Boston").'))
        assert evaluate(program, db).query_rows() == {(1,)}

    def test_string_order_comparison(self):
        program = parse_program("q(X) :- tag(X, T), T < zz.", query="q")
        db = Database(parse_facts("tag(1, aa). tag(2, zzz)."))
        assert evaluate(program, db).query_rows() == {(1,)}

    def test_mixed_type_comparison_raises(self):
        program = parse_program("q(X) :- tag(X, T), T < 5.", query="q")
        db = Database(parse_facts("tag(1, aa)."))
        with pytest.raises(TypeError):
            evaluate(program, db)
