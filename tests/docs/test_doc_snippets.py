"""The documentation's code blocks must stay valid.

Every fenced ``python`` block in README.md and docs/*.md is compiled,
and its imports of the ``repro`` package are executed — so renaming a
public symbol without updating the docs fails CI.  Bash blocks are
checked lightly: any ``python -m repro <command>`` they mention must
name a real CLI subcommand.
"""

import ast
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda p: p.name,
)

FENCE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)


def _blocks(language):
    for path in DOC_FILES:
        text = path.read_text(encoding="utf-8")
        for index, match in enumerate(FENCE.finditer(text)):
            if match.group(1) == language:
                yield pytest.param(
                    match.group(2), id=f"{path.name}-{language}-{index}"
                )


def test_docs_exist_and_are_cross_linked():
    assert (REPO_ROOT / "docs" / "architecture.md").exists()
    assert (REPO_ROOT / "docs" / "observability.md").exists()
    assert (REPO_ROOT / "docs" / "storage.md").exists()
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
    assert "docs/observability.md" in readme
    assert "docs/storage.md" in readme
    # The storage contract is reachable from the architecture and
    # performance pages, and documents both backends by name.
    for page in ("architecture.md", "performance.md", "serving.md"):
        text = (REPO_ROOT / "docs" / page).read_text(encoding="utf-8")
        assert "storage.md" in text, f"docs/{page} does not link storage.md"
    storage = (REPO_ROOT / "docs" / "storage.md").read_text(encoding="utf-8")
    assert "`rows`" in storage and "`columnar`" in storage


@pytest.mark.parametrize("source", list(_blocks("python")))
def test_python_blocks_compile(source):
    compile(source, "<doc-snippet>", "exec")


@pytest.mark.parametrize("source", list(_blocks("python")))
def test_python_blocks_import_real_symbols(source):
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            module = __import__(node.module, fromlist=["_"])
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"doc snippet imports {alias.name} from {node.module}, "
                    "which does not exist"
                )


@pytest.mark.parametrize("source", list(_blocks("bash")))
def test_bash_blocks_name_real_cli_commands(source):
    from repro.cli import build_parser

    subcommands = set()
    for action in build_parser()._subparsers._group_actions:
        subcommands.update(action.choices)

    for match in re.finditer(r"python -m repro (\w+)", source):
        assert match.group(1) in subcommands, match.group(1)
