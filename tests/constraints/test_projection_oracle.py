"""Brute-force oracle for OrderConstraintSet.project.

Soundness: every projected atom holds in every grid solution of the
constraint set.  Completeness (for the strongest relations): whenever
the grid semantics entails ``=`` or ``<`` between two projected terms,
the projection contains an atom at least that strong.
"""

import itertools
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.dense_order import OrderConstraintSet
from repro.datalog.atoms import COMPARISONS, OrderAtom, evaluate_comparison
from repro.datalog.terms import Constant, Variable

X, Y = Variable("X"), Variable("Y")
GRID = [Fraction(n, 4) for n in range(-8, 13)]
TERMS = [X, Y, Constant(0), Constant(1)]
atoms_strategy = st.lists(
    st.builds(
        OrderAtom,
        st.sampled_from(TERMS),
        st.sampled_from(list(COMPARISONS)),
        st.sampled_from(TERMS),
    ),
    max_size=4,
)


def solutions(atoms):
    variables = sorted(
        {t for a in atoms for t in (a.left, a.right) if isinstance(t, Variable)},
        key=lambda v: v.name,
    )
    for assignment in itertools.product(GRID, repeat=len(variables)):
        env = dict(zip(variables, assignment))

        def value(term):
            return env[term] if isinstance(term, Variable) else Fraction(term.value)

        if all(evaluate_comparison(value(a.left), value(a.right), a.op) for a in atoms):
            yield env


@settings(max_examples=60, deadline=None)
@given(atoms_strategy)
def test_projection_soundness(atoms):
    constraints = OrderConstraintSet(atoms)
    if not constraints.is_satisfiable():
        return
    projected = constraints.project([X, Y])
    for env in solutions(atoms):

        def value(term):
            return env[term] if isinstance(term, Variable) else Fraction(term.value)

        for atom in projected:
            if not {t for t in (atom.left, atom.right) if isinstance(t, Variable)} <= set(env):
                continue
            assert evaluate_comparison(value(atom.left), value(atom.right), atom.op), (
                atoms,
                atom,
                env,
            )


@settings(max_examples=60, deadline=None)
@given(atoms_strategy)
def test_projection_completeness_for_strongest_relations(atoms):
    constraints = OrderConstraintSet(atoms)
    if not constraints.is_satisfiable():
        return
    sols = list(solutions(atoms))
    if not sols:
        # The grid is complete for this family, so a satisfiable set
        # always has a grid solution.
        raise AssertionError(f"solver says satisfiable but grid found nothing: {atoms}")
    projected = constraints.project([X, Y])

    def all_solutions_satisfy(op):
        return all(
            evaluate_comparison(env.get(X, None), env.get(Y, None), op)
            for env in sols
            if X in env and Y in env
        )

    if not any(X in env and Y in env for env in sols):
        return
    if all_solutions_satisfy("="):
        assert any(a.op == "=" for a in projected)
    elif all_solutions_satisfy("<"):
        assert any(
            a.op == "<" and a.left == X and a.right == Y for a in projected
        ) or any(a.op == "<" for a in projected)
