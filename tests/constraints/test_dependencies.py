"""Dependency-builder tests: fd's, ind's, mvd's, domain, disjointness."""

import pytest

from repro.constraints.dependencies import (
    disjointness_constraint,
    domain_constraint,
    functional_dependency,
    inclusion_dependency,
    key_constraint,
    multivalued_dependency,
)
from repro.constraints.integrity import database_satisfies
from repro.datalog.database import Database


class TestFunctionalDependency:
    def test_theorem_55_shape(self):
        fd = functional_dependency("e", 3, [0], 2)
        assert len(fd.positive_atoms) == 2
        assert len(fd.order_atoms) == 1
        assert fd.order_atoms[0].op == "!="

    def test_checking(self):
        fd = functional_dependency("emp", 2, [0], 1)
        ok = Database.from_rows({"emp": [(1, "sales"), (2, "dev"), (1, "sales")]})
        bad = Database.from_rows({"emp": [(1, "sales"), (1, "dev")]})
        assert database_satisfies([fd], ok)
        assert not database_satisfies([fd], bad)

    def test_composite_determinant(self):
        fd = functional_dependency("r", 3, [0, 1], 2)
        ok = Database.from_rows({"r": [(1, 2, 9), (1, 3, 8)]})
        bad = Database.from_rows({"r": [(1, 2, 9), (1, 2, 8)]})
        assert database_satisfies([fd], ok)
        assert not database_satisfies([fd], bad)

    def test_dependent_in_determinant_rejected(self):
        with pytest.raises(ValueError):
            functional_dependency("r", 2, [0], 0)

    def test_position_validation(self):
        with pytest.raises(ValueError):
            functional_dependency("r", 2, [5], 1)


class TestKeyConstraint:
    def test_one_fd_per_nonkey_position(self):
        fds = key_constraint("r", 4, [0])
        assert len(fds) == 3

    def test_checking(self):
        fds = key_constraint("r", 3, [0])
        ok = Database.from_rows({"r": [(1, "a", "b"), (2, "a", "b")]})
        bad = Database.from_rows({"r": [(1, "a", "b"), (1, "a", "c")]})
        assert database_satisfies(fds, ok)
        assert not database_satisfies(fds, bad)


class TestInclusionDependency:
    def test_checking(self):
        ind = inclusion_dependency("order_item", 2, [1], "product", 1, [0])
        ok = Database.from_rows(
            {"order_item": [(1, 10), (2, 11)], "product": [(10,), (11,), (12,)]}
        )
        bad = Database.from_rows({"order_item": [(1, 99)], "product": [(10,)]})
        assert database_satisfies([ind], ok)
        assert not database_satisfies([ind], bad)

    def test_reordered_positions(self):
        ind = inclusion_dependency("r", 2, [0, 1], "s", 2, [1, 0])
        ok = Database.from_rows({"r": [(1, 2)], "s": [(2, 1)]})
        bad = Database.from_rows({"r": [(1, 2)], "s": [(1, 2)]})
        assert database_satisfies([ind], ok)
        assert not database_satisfies([ind], bad)

    def test_partial_target_rejected(self):
        with pytest.raises(ValueError):
            inclusion_dependency("r", 2, [0], "s", 2, [0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            inclusion_dependency("r", 2, [0, 1], "s", 1, [0])


class TestMultivaluedDependency:
    def test_checking(self):
        # course ->> book (independent of lecturer): positions (course, book, lecturer)
        mvd = multivalued_dependency("teaches", 3, [0], [1])
        ok = Database.from_rows(
            {
                "teaches": [
                    ("db", "ullman", "alice"),
                    ("db", "date", "bob"),
                    ("db", "ullman", "bob"),
                    ("db", "date", "alice"),
                ]
            }
        )
        bad = Database.from_rows(
            {
                "teaches": [
                    ("db", "ullman", "alice"),
                    ("db", "date", "bob"),
                ]
            }
        )
        assert database_satisfies([mvd], ok)
        assert not database_satisfies([mvd], bad)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            multivalued_dependency("r", 3, [0], [0, 1])


class TestDomainConstraint:
    def test_bounds(self):
        ics = domain_constraint("price", 2, 1, lower=0, upper=100)
        assert len(ics) == 2
        ok = Database.from_rows({"price": [("x", 5), ("y", 100)]})
        too_low = Database.from_rows({"price": [("x", -1)]})
        too_high = Database.from_rows({"price": [("x", 101)]})
        assert database_satisfies(ics, ok)
        assert not database_satisfies(ics, too_low)
        assert not database_satisfies(ics, too_high)

    def test_strict_bounds(self):
        ics = domain_constraint("v", 1, 0, lower=0, strict_lower=True)
        boundary = Database.from_rows({"v": [(0,)]})
        assert not database_satisfies(ics, boundary)

    def test_requires_a_bound(self):
        with pytest.raises(ValueError):
            domain_constraint("v", 1, 0)


class TestDisjointness:
    def test_checking(self):
        ic = disjointness_constraint("left", "right", 1)
        ok = Database.from_rows({"left": [(1,)], "right": [(2,)]})
        bad = Database.from_rows({"left": [(1,)], "right": [(1,)]})
        assert database_satisfies([ic], ok)
        assert not database_satisfies([ic], bad)


class TestIntegrationWithOptimizer:
    def test_fd_flows_into_residue_injection(self):
        """Theorem 5.5 territory: the fd's != atom is non-local, so the
        optimizer reports incomplete incorporation but still optimizes."""
        from repro.core.rewrite import optimize
        from repro.datalog.parser import parse_program

        program = parse_program("q(X, Y) :- e(X, Y, Z).", query="q")
        fd = functional_dependency("e", 3, [0, 1], 2)
        report = optimize(program, [fd])
        assert report.satisfiable
        assert not report.complete
        assert fd in report.residue_only_constraints

    def test_disjointness_prunes_rule(self):
        from repro.core.rewrite import optimize
        from repro.datalog.parser import parse_program

        program = parse_program("q(X) :- left(X), right(X).", query="q")
        ic = disjointness_constraint("left", "right", 1)
        report = optimize(program, [ic])
        assert not report.satisfiable
