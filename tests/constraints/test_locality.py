"""Locality analysis tests (paper, Section 2)."""

import pytest

from repro.constraints.locality import (
    all_fully_local,
    anchor_candidates,
    choose_anchor,
    is_fully_local,
    is_local,
    local_atoms,
    nonlocal_atoms,
)
from repro.datalog.parser import parse_constraints


class TestLocality:
    def test_paper_example_local(self):
        # The paper's own example: X < Y is local in :- e(X,Y), e(Y,Z), X < Y.
        ic = parse_constraints(":- e(X, Y), e(Y, Z), X < Y.")[0]
        order_atom = ic.order_atoms[0]
        assert is_local(ic, order_atom)

    def test_paper_example_nonlocal(self):
        # ... while X < Z would not be local in the same ic.
        ic = parse_constraints(":- e(X, Y), e(Y, Z), X < Z.")[0]
        assert not is_local(ic, ic.order_atoms[0])
        assert nonlocal_atoms(ic) == [ic.order_atoms[0]]

    def test_example_31_constraint_nonlocal(self):
        # Example 3.1's ic relates variables of two different atoms.
        ic = parse_constraints(":- startPoint(X), endPoint(Y), Y <= X.")[0]
        assert not is_fully_local(ic)

    def test_section3_constraints_local(self):
        ics = parse_constraints(
            ":- startPoint(X), step(X, Y), X < 100. :- step(X, Y), X >= Y."
        )
        assert all(is_fully_local(ic) for ic in ics)
        assert all_fully_local(ics)

    def test_negated_atom_locality(self):
        local = parse_constraints(":- e(X, Y), not f(X, Y).")[0]
        assert is_fully_local(local)
        nonlocal_ic = parse_constraints(":- e(X), g(Y), not f(X, Y).")[0]
        assert not is_fully_local(nonlocal_ic)

    def test_plain_is_trivially_local(self):
        ic = parse_constraints(":- a(X, Y), b(Y, Z).")[0]
        assert is_fully_local(ic)
        assert local_atoms(ic) == []


class TestAnchors:
    def test_candidates(self):
        ic = parse_constraints(":- startPoint(X), step(X, Y), X < 100.")[0]
        candidates = anchor_candidates(ic, ic.order_atoms[0])
        assert {a.predicate for a in candidates} == {"startPoint", "step"}

    def test_choose_anchor_stable(self):
        ic = parse_constraints(":- startPoint(X), step(X, Y), X < 100.")[0]
        assert choose_anchor(ic, ic.order_atoms[0]).predicate == "startPoint"

    def test_choose_anchor_nonlocal_raises(self):
        ic = parse_constraints(":- e(X, Y), e(Y, Z), X < Z.")[0]
        with pytest.raises(ValueError):
            choose_anchor(ic, ic.order_atoms[0])

    def test_local_atoms_pairing(self):
        ic = parse_constraints(":- step(X, Y), X >= Y.")[0]
        pairs = local_atoms(ic)
        assert len(pairs) == 1
        assert pairs[0].anchor.predicate == "step"
        assert pairs[0].is_order
