"""Integrity-constraint tests: checking, classification, safety."""

import pytest

from repro.constraints.integrity import (
    IntegrityConstraint,
    check_no_idb,
    database_satisfies,
    violations,
)
from repro.datalog.database import Database
from repro.datalog.parser import parse_constraints, parse_program
from repro.datalog.rules import UnsafeRuleError


class TestConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            IntegrityConstraint(())

    def test_unsafe_order_variable_rejected(self):
        with pytest.raises(UnsafeRuleError):
            parse_constraints(":- e(X), X < Y.")

    def test_unsafe_negated_variable_rejected(self):
        with pytest.raises(UnsafeRuleError):
            parse_constraints(":- e(X), not f(X, Y).")

    def test_views(self):
        ic = parse_constraints(":- e(X, Y), not f(Y), X < Y.")[0]
        assert len(ic.positive_atoms) == 1
        assert len(ic.negative_atoms) == 1
        assert len(ic.order_atoms) == 1
        assert ic.predicates() == {"e", "f"}

    def test_classification(self):
        plain = parse_constraints(":- e(X, Y), f(Y).")[0]
        assert plain.is_plain() and plain.classification() == frozenset()
        theta = parse_constraints(":- e(X, Y), X < Y.")[0]
        assert theta.classification() == {"theta"}
        both = parse_constraints(":- e(X, Y), not f(X), X < Y.")[0]
        assert both.classification() == {"theta", "not"}

    def test_repr_parses_back(self):
        ic = parse_constraints(":- e(X, Y), not f(Y), X < Y.")[0]
        assert parse_constraints(repr(ic))[0] == ic


class TestChecking:
    def test_plain_violation_counting(self):
        ic = parse_constraints(":- a(X, Y), b(Y, Z).")[0]
        db = Database.from_rows({"a": [(1, 2), (3, 4)], "b": [(2, 5), (2, 6)]})
        assert violations(ic, db) == 2

    def test_satisfied(self):
        ic = parse_constraints(":- a(X, Y), b(Y, Z).")[0]
        db = Database.from_rows({"a": [(1, 2)], "b": [(3, 4)]})
        assert database_satisfies([ic], db)

    def test_order_constraint_checking(self):
        ic = parse_constraints(":- step(X, Y), X >= Y.")[0]
        good = Database.from_rows({"step": [(1, 2), (2, 3)]})
        bad = Database.from_rows({"step": [(1, 2), (3, 3)]})
        assert database_satisfies([ic], good)
        assert not database_satisfies([ic], bad)

    def test_negated_constraint_checking(self):
        ic = parse_constraints(":- member(X), not registered(X).")[0]
        ok = Database.from_rows({"member": [(1,)], "registered": [(1,)]})
        bad = Database.from_rows({"member": [(1,), (2,)], "registered": [(1,)]})
        assert database_satisfies([ic], ok)
        assert not database_satisfies([ic], bad)

    def test_functional_dependency(self):
        # Theorem 5.5's fd shape: same key, different value.
        ic = parse_constraints(":- e(X, Y1), e(X, Y2), Y1 != Y2.")[0]
        functional = Database.from_rows({"e": [(1, 2), (3, 4)]})
        broken = Database.from_rows({"e": [(1, 2), (1, 5)]})
        assert database_satisfies([ic], functional)
        assert not database_satisfies([ic], broken)


class TestNoIdb:
    def test_idb_in_constraint_rejected(self):
        program = parse_program("p(X) :- e(X).", query="p")
        ics = parse_constraints(":- p(X), f(X).")
        with pytest.raises(ValueError):
            check_no_idb(ics, program)

    def test_edb_only_accepted(self):
        program = parse_program("p(X) :- e(X).", query="p")
        ics = parse_constraints(":- e(X), f(X).")
        check_no_idb(ics, program)
