"""Dense-order solver tests, including a brute-force completeness check."""

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.dense_order import OrderConstraintSet, UnsatisfiableError
from repro.datalog.atoms import COMPARISONS, OrderAtom, evaluate_comparison
from repro.datalog.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def oc(*atoms):
    return OrderConstraintSet(atoms)


class TestSatisfiability:
    def test_empty_is_satisfiable(self):
        assert oc().is_satisfiable()

    def test_strict_cycle_unsat(self):
        assert not oc(OrderAtom(X, "<", Y), OrderAtom(Y, "<", X)).is_satisfiable()

    def test_weak_cycle_sat(self):
        assert oc(OrderAtom(X, "<=", Y), OrderAtom(Y, "<=", X)).is_satisfiable()

    def test_weak_cycle_with_neq_unsat(self):
        assert not oc(
            OrderAtom(X, "<=", Y), OrderAtom(Y, "<=", X), OrderAtom(X, "!=", Y)
        ).is_satisfiable()

    def test_self_neq_unsat(self):
        assert not oc(OrderAtom(X, "!=", X)).is_satisfiable()

    def test_eq_then_strict_unsat(self):
        assert not oc(OrderAtom(X, "=", Y), OrderAtom(X, "<", Y)).is_satisfiable()

    def test_constant_window(self):
        assert oc(OrderAtom(X, ">", Constant(3)), OrderAtom(X, "<", Constant(5))).is_satisfiable()

    def test_constant_window_empty_via_order(self):
        # Dense order: strictly between 3 and 5 there are points, but not
        # when bounds flip.
        assert not oc(
            OrderAtom(X, "<", Constant(3)), OrderAtom(X, ">", Constant(5))
        ).is_satisfiable()

    def test_dense_between_adjacent_integers(self):
        # 3 < X < 4 is satisfiable on a dense order (unlike the integers).
        assert oc(OrderAtom(X, ">", Constant(3)), OrderAtom(X, "<", Constant(4))).is_satisfiable()

    def test_constant_equality_conflict(self):
        assert not oc(OrderAtom(Constant(1), "=", Constant(2))).is_satisfiable()

    def test_equal_constants(self):
        assert oc(OrderAtom(Constant(1), "=", Constant(1))).is_satisfiable()

    def test_string_constants_neq(self):
        assert oc(OrderAtom(X, "=", Constant("a")), OrderAtom(X, "!=", Constant("b"))).is_satisfiable()
        assert not oc(
            OrderAtom(X, "=", Constant("a")), OrderAtom(X, "=", Constant("b"))
        ).is_satisfiable()

    def test_mixed_families_distinct(self):
        assert not oc(OrderAtom(Constant(1), "=", Constant("a"))).is_satisfiable()

    def test_transitive_strict_chain(self):
        assert not oc(
            OrderAtom(X, "<", Y), OrderAtom(Y, "<", Z), OrderAtom(Z, "<=", X)
        ).is_satisfiable()


class TestEntailment:
    def test_weak_from_strict(self):
        assert oc(OrderAtom(X, "<", Y)).entails(OrderAtom(X, "<=", Y))

    def test_neq_from_strict(self):
        assert oc(OrderAtom(X, "<", Y)).entails(OrderAtom(X, "!=", Y))

    def test_strict_from_weak_and_neq(self):
        assert oc(OrderAtom(X, "<=", Y), OrderAtom(X, "!=", Y)).entails(OrderAtom(X, "<", Y))

    def test_transitivity(self):
        assert oc(OrderAtom(X, "<", Y), OrderAtom(Y, "<", Z)).entails(OrderAtom(X, "<", Z))

    def test_through_constants(self):
        assert oc(OrderAtom(X, "<=", Constant(5)), OrderAtom(Constant(5), "<", Constant(7))).entails(
            OrderAtom(X, "<", Constant(7))
        )

    def test_not_entailed(self):
        assert not oc(OrderAtom(X, "<=", Y)).entails(OrderAtom(X, "<", Y))

    def test_unsat_entails_everything(self):
        unsat = oc(OrderAtom(X, "<", X))
        assert unsat.entails(OrderAtom(Y, "=", Z))

    def test_equality_substitution_direction(self):
        assert oc(OrderAtom(X, "=", Y)).entails(OrderAtom(Y, "=", X))


class TestImpliedEqualities:
    def test_weak_cycle_merges(self):
        groups = oc(OrderAtom(X, "<=", Y), OrderAtom(Y, "<=", X)).implied_equalities()
        assert groups == [frozenset({X, Y})]

    def test_constant_representative(self):
        mapping = oc(OrderAtom(X, "=", Constant(3))).equality_substitution()
        assert mapping == {X: Constant(3)}

    def test_variable_representative_lexicographic(self):
        mapping = oc(OrderAtom(Y, "=", X)).equality_substitution()
        assert mapping == {Y: X}

    def test_unsatisfiable_raises(self):
        with pytest.raises(UnsatisfiableError):
            oc(OrderAtom(X, "<", X)).implied_equalities()

    def test_no_equalities(self):
        assert oc(OrderAtom(X, "<", Y)).implied_equalities() == []


class TestModel:
    def test_model_satisfies_constraints(self):
        constraints = oc(
            OrderAtom(X, "<", Y),
            OrderAtom(Y, "<=", Z),
            OrderAtom(X, ">", Constant(2)),
            OrderAtom(Z, "<", Constant(10)),
        )
        model = constraints.model()
        assert model is not None
        values = {X: model[X], Y: model[Y], Z: model[Z]}
        assert values[X] < values[Y] <= values[Z]
        assert 2 < values[X] and values[Z] < 10

    def test_model_none_when_unsat(self):
        assert oc(OrderAtom(X, "<", X)).model() is None

    def test_model_with_neq_only(self):
        model = oc(OrderAtom(X, "!=", Y)).model()
        assert model is not None and model[X] != model[Y]

    def test_model_with_string_equality(self):
        model = oc(OrderAtom(X, "=", Constant("tok"))).model()
        assert model == {X: "tok"}

    def test_string_order_unsupported(self):
        with pytest.raises(NotImplementedError):
            oc(OrderAtom(X, "<", Constant("zzz"))).model()


class TestProjection:
    def test_projection_strongest(self):
        constraints = oc(OrderAtom(X, "<", Y), OrderAtom(Y, "<", Z))
        projected = constraints.project([X, Z])
        assert OrderAtom(X, "<", Z).normalized() in projected

    def test_projection_keeps_equalities(self):
        constraints = oc(OrderAtom(X, "=", Y))
        projected = constraints.project([X, Y])
        assert OrderAtom(X, "=", Y).normalized() in projected

    def test_projection_of_unsat_raises(self):
        with pytest.raises(UnsatisfiableError):
            oc(OrderAtom(X, "<", X)).project([X])


# ----------------------------------------------------------------------
# Brute-force cross-validation
# ----------------------------------------------------------------------
# Two variables over constants {0, 1}: a quarter-step grid on [-2, 3]
# provides at least two distinct values inside every interval the
# constants carve out, making the brute force complete for this family.
GRID = [Fraction(n, 4) for n in range(-8, 13)]
TERMS = [X, Y, Constant(0), Constant(1)]


def brute_force_satisfiable(atoms) -> bool:
    variables = sorted({t for a in atoms for t in (a.left, a.right) if isinstance(t, Variable)},
                       key=lambda v: v.name)
    for assignment in itertools.product(GRID, repeat=len(variables)):
        env = dict(zip(variables, assignment))

        def value(term):
            return env[term] if isinstance(term, Variable) else Fraction(term.value)

        if all(evaluate_comparison(value(a.left), value(a.right), a.op) for a in atoms):
            return True
    return False


@settings(max_examples=150, deadline=None)
@given(
    st.lists(
        st.builds(
            OrderAtom,
            st.sampled_from(TERMS),
            st.sampled_from(list(COMPARISONS)),
            st.sampled_from(TERMS),
        ),
        max_size=5,
    )
)
def test_solver_agrees_with_brute_force(atoms):
    constraints = OrderConstraintSet(atoms)
    assert constraints.is_satisfiable() == brute_force_satisfiable(atoms)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.builds(
            OrderAtom,
            st.sampled_from(TERMS),
            st.sampled_from(list(COMPARISONS)),
            st.sampled_from(TERMS),
        ),
        max_size=5,
    )
)
def test_model_satisfies_all_atoms(atoms):
    constraints = OrderConstraintSet(atoms)
    model = constraints.model()
    if model is None:
        assert not constraints.is_satisfiable()
        return

    def value(term):
        if isinstance(term, Variable):
            return model[term]
        return term.value

    for atom in atoms:
        assert evaluate_comparison(value(atom.left), value(atom.right), atom.op)
