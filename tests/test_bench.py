"""The engine benchmark harness: payload shape, fixpoint gate, CLI."""

import json

import pytest

from repro.bench import (
    ENGINE_CONFIGS,
    build_workloads,
    render_results,
    run_bench,
    write_results,
)
from repro.cli import main


@pytest.fixture(scope="module")
def quick_payload():
    return run_bench(
        workloads=["bench_taint", "bench_magic"], quick=True, repeat=1
    )


def test_build_workloads_covers_the_required_suite():
    suite = build_workloads(quick=True)
    assert {"bench_scaling", "bench_magic", "bench_example31"} <= set(suite)
    for units in suite.values():
        assert units  # every workload has at least one evaluation unit


def test_payload_shape_and_engines(quick_payload):
    assert quick_payload["quick"] is True
    assert quick_payload["engines"] == [label for label, _ in ENGINE_CONFIGS]
    for entry in quick_payload["workloads"].values():
        assert set(entry["engines"]) == set(quick_payload["engines"])
        for engine in entry["engines"].values():
            assert engine["time_s"] >= 0
            assert len(engine["fixpoint_sha256"]) == 64
            assert "rows_scanned" in engine["stats"]


def test_fixpoints_identical_across_engines(quick_payload):
    assert quick_payload["ok"] is True
    for entry in quick_payload["workloads"].values():
        digests = {e["fixpoint_sha256"] for e in entry["engines"].values()}
        assert len(digests) == 1
        assert entry["fixpoints_match"] is True


def test_magic_workload_scans_fewer_rows_on_compiled_engine(quick_payload):
    entry = quick_payload["workloads"]["bench_magic"]
    interpreted = entry["engines"]["interpreted"]["stats"]["rows_scanned"]
    cost = entry["engines"]["slots-cost"]["stats"]["rows_scanned"]
    assert cost < interpreted


def test_render_and_write(quick_payload, tmp_path):
    text = render_results(quick_payload)
    assert "bench_taint" in text and "slots-cost" in text and "ok" in text
    path = tmp_path / "bench.json"
    write_results(quick_payload, str(path))
    assert json.loads(path.read_text())["ok"] is True


def test_unknown_workload_rejected():
    with pytest.raises(ValueError):
        run_bench(workloads=["bench_nonexistent"], quick=True, repeat=1)


class TestWorkersAxis:
    @pytest.fixture(scope="class")
    def parallel_payload(self):
        return run_bench(
            workloads=["bench_scaling"], quick=True, repeat=1, workers=2
        )

    def test_parallel_entry_shape(self, parallel_payload):
        assert parallel_payload["workers"] == 2
        entry = parallel_payload["workloads"]["bench_scaling"]
        parallel = entry["parallel"]
        # Powers of two up to the requested count.
        assert set(parallel["workers"]) == {"1", "2"}
        for run in parallel["workers"].values():
            assert run["time_s"] >= 0
            assert run["critical_path_s"] >= 0
            assert run["shard_overhead_seconds"] >= 0
            assert len(run["fixpoint_sha256"]) == 64
        speedup = parallel["speedup_parallel_vs_columnar"]
        assert speedup["basis"] == "critical_path"
        assert set(speedup["critical_path"]) == {"1", "2"}
        assert set(speedup["wall"]) == {"1", "2"}

    def test_parallel_digests_gate_against_columnar(self, parallel_payload):
        assert parallel_payload["ok"] is True
        entry = parallel_payload["workloads"]["bench_scaling"]
        reference = entry["engines"]["slots-columnar"]["fixpoint_sha256"]
        for run in entry["parallel"]["workers"].values():
            assert run["fixpoint_sha256"] == reference
        assert entry["parallel"]["fixpoints_match"] is True

    def test_render_shows_sharded_rows(self, parallel_payload):
        text = render_results(parallel_payload)
        assert "sharded-w2" in text

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_bench(workloads=["bench_scaling"], quick=True, workers=0)


class TestCli:
    def test_bench_json_writes_results(self, tmp_path, capsys):
        out = tmp_path / "BENCH_results.json"
        code = main(
            [
                "bench",
                "--json",
                "--quick",
                "--output",
                str(out),
                "--workloads",
                "bench_taint",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert "bench_taint" in payload["workloads"]
        assert "results written to" in capsys.readouterr().out

    def test_bench_rejects_unknown_workloads(self, tmp_path, capsys):
        assert main(["bench", "--quick", "--workloads", "nope"]) == 2
        assert "error:" in capsys.readouterr().err
