"""The magic transformation: shape of the output and answer preservation."""

import pytest

from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_atom, parse_facts, parse_program
from repro.datalog.program import Program
from repro.magic import assert_equivalent, magic_transform, match_query_atom

TC = """
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
"""

# A short chain plus a disconnected longer one that bound queries on
# the short chain should never explore.
CHAIN = Database(
    parse_facts(
        "e(1, 2). e(2, 3). e(3, 4). "
        + " ".join(f"e({i}, {i + 1})." for i in range(10, 20))
    )
)


class TestShape:
    def test_transitive_closure_bf(self):
        program = parse_program(TC, query="p")
        mp = magic_transform(program, parse_atom("p(1, Y)"))
        texts = {repr(rule) for rule in mp.program.rules}
        assert texts == {
            "m_p__bf(1).",
            "p__bf(X, Y) :- m_p__bf(X), e(X, Y).",
            "m_p__bf(Z) :- m_p__bf(X), e(X, Z).",
            "p__bf(X, Y) :- m_p__bf(X), e(X, Z), p__bf(Z, Y).",
        }
        assert mp.answer_predicate == "p__bf"
        assert repr(mp.seed) == "m_p__bf(1)."

    def test_all_free_query_gets_nullary_seed(self):
        program = parse_program(TC, query="p")
        mp = magic_transform(program, parse_atom("p(X, Y)"))
        assert mp.seed.head.arity == 0
        assert repr(mp.seed) == "m_p__ff()."

    def test_magic_program_is_valid(self):
        program = parse_program(TC, query="p")
        mp = magic_transform(program, parse_atom("p(1, Y)"))
        # Re-validating must succeed: safe rules, EDB-only negation.
        Program(mp.program.rules, mp.program.query)

    def test_filters_stay_in_guarded_rules(self):
        program = parse_program(
            "p(X, Y) :- e(X, Y), X < Y, not blocked(X).", query="p"
        )
        mp = magic_transform(program, parse_atom("p(1, Y)"))
        guarded = [r for r in mp.program.rules if r.head.predicate == "p__bf"]
        assert len(guarded) == 1
        assert repr(guarded[0]) == (
            "p__bf(X, Y) :- m_p__bf(X), e(X, Y), X < Y, not blocked(X)."
        )

    def test_evaluable_filter_enters_magic_prefix(self):
        program = parse_program(
            """
            q(X, Y) :- s(X), X < 100, p(X, Y).
            p(X, Y) :- e(X, Y).
            """,
            query="q",
        )
        mp = magic_transform(program, parse_atom("q(1, Y)"))
        (magic_rule,) = [
            r for r in mp.program.rules if r.head.predicate == "m_p__bf"
        ]
        assert repr(magic_rule) == "m_p__bf(X) :- m_q__bf(X), s(X), X < 100."

    def test_unevaluable_filter_dropped_from_magic_prefix(self):
        # Y is free in the prefix, so the filter cannot gate demand.
        program = parse_program(
            """
            q(X) :- s(X), p(X, Y), X < Y.
            p(X, Y) :- e(X, Y).
            """,
            query="q",
        )
        mp = magic_transform(program, parse_atom("q(1)"))
        (magic_rule,) = [
            r for r in mp.program.rules if r.head.predicate == "m_p__bf"
        ]
        assert repr(magic_rule) == "m_p__bf(X) :- m_q__b(X), s(X)."

    def test_negation_stays_edb_only(self):
        program = parse_program(
            """
            q(X) :- s(X), p(X, Y), not blocked(Y).
            p(X, Y) :- e(X, Y).
            """,
            query="q",
        )
        mp = magic_transform(program, parse_atom("q(1)"))
        idb = mp.program.idb_predicates
        for rule in mp.program.rules:
            for literal in rule.negative_literals:
                assert literal.predicate not in idb


class TestAnswers:
    def test_bound_query_restricts_derivations(self):
        program = parse_program(TC, query="p")
        query_atom = parse_atom("p(1, Y)")
        mp = magic_transform(program, query_atom)
        check = assert_equivalent(program, mp, query_atom, CHAIN)
        assert check.original_answers == {(1, 2), (1, 3), (1, 4)}
        # The disconnected 10-chain is never explored.
        full = evaluate(program, CHAIN)
        assert check.transformed_stats.facts_derived < full.stats.facts_derived

    def test_fully_bound_query(self):
        program = parse_program(TC, query="p")
        query_atom = parse_atom("p(1, 4)")
        mp = magic_transform(program, query_atom)
        check = assert_equivalent(program, mp, query_atom, CHAIN)
        assert check.transformed_answers == {(1, 4)}

    def test_no_answers_when_seed_misses(self):
        program = parse_program(TC, query="p")
        query_atom = parse_atom("p(99, Y)")
        mp = magic_transform(program, query_atom)
        check = assert_equivalent(program, mp, query_atom, CHAIN)
        assert check.transformed_answers == frozenset()

    def test_answers_helper_matches_equivalence_check(self):
        program = parse_program(TC, query="p")
        query_atom = parse_atom("p(10, Y)")
        mp = magic_transform(program, query_atom)
        assert mp.answers(CHAIN) == {(10, i) for i in range(11, 21)}


class TestMatchQueryAtom:
    def test_constant_mismatch(self):
        assert match_query_atom((1, 2), parse_atom("p(1, Y)"))
        assert not match_query_atom((2, 2), parse_atom("p(1, Y)"))

    def test_repeated_variable_consistency(self):
        atom = parse_atom("p(X, X)")
        assert match_query_atom((3, 3), atom)
        assert not match_query_atom((3, 4), atom)


class TestSummary:
    def test_summary_mentions_seed_and_patterns(self):
        program = parse_program(TC, query="p")
        mp = magic_transform(program, parse_atom("p(1, Y)"))
        text = mp.summary()
        assert "m_p__bf(1)" in text
        assert "p: bf" in text
