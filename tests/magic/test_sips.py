"""SIPS strategies: ordering, binding propagation, registry, validation."""

import pytest

from repro.datalog.atoms import Literal, OrderAtom
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable
from repro.magic.sips import (
    STRATEGIES,
    binding_profile,
    bound_after,
    check_permutation,
    get_sips,
    left_to_right,
    most_bound_first,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestBoundAfter:
    def test_positive_literal_binds_its_variables(self):
        rule = parse_rule("h(X, Y) :- e(X, Y).")
        assert bound_after(rule.body[0], frozenset()) == {X, Y}

    def test_negated_literal_binds_nothing(self):
        rule = parse_rule("h(X) :- e(X, Y), not b(X, Y).")
        assert bound_after(rule.body[1], frozenset({X})) == {X}

    def test_order_atom_binds_nothing(self):
        rule = parse_rule("h(X) :- e(X, Y), X < Y.")
        assert bound_after(rule.body[1], frozenset({X})) == {X}

    def test_equality_propagates_from_constant(self):
        rule = parse_rule("h(X) :- e(X, Y), X = 5.")
        assert bound_after(rule.body[1], frozenset()) == {X}

    def test_equality_propagates_from_bound_variable(self):
        rule = parse_rule("h(X, Y) :- e(X, Z), X = Y.")
        assert bound_after(rule.body[1], frozenset({X})) == {X, Y}

    def test_equality_between_free_variables_is_inert(self):
        rule = parse_rule("h(X, Y) :- e(X, Y), X = Y.")
        assert bound_after(rule.body[1], frozenset()) == frozenset()


class TestBindingProfile:
    def test_profile_tracks_prefix_bindings(self):
        rule = parse_rule("h(X, Y) :- e(X, Z), f(Z, Y), X < Y.")
        profile = binding_profile(rule.body, frozenset({X}))
        assert profile == [frozenset({X}), frozenset({X, Z}), frozenset({X, Z, Y})]


class TestLeftToRight:
    def test_preserves_declared_order(self):
        rule = parse_rule("h(X, Y) :- f(Z, Y), e(X, Z), X < Y.")
        assert left_to_right(rule, frozenset({X})) == rule.body


class TestMostBoundFirst:
    def test_prefers_literals_with_bound_arguments(self):
        rule = parse_rule("h(X, Y) :- f(Z, Y), e(X, Z).")
        order = most_bound_first(rule, frozenset({X}))
        assert [item.predicate for item in order] == ["e", "f"]

    def test_filters_flushed_when_evaluable(self):
        rule = parse_rule("h(X, Y) :- f(Z, Y), e(X, Z), X < Z.")
        order = most_bound_first(rule, frozenset({X}))
        assert isinstance(order[1], OrderAtom)
        assert [i.predicate for i in order if isinstance(i, Literal)] == ["e", "f"]

    def test_result_is_a_permutation(self):
        rule = parse_rule("h(X, Y) :- f(Z, Y), e(X, Z), X < Z, not g(X, Y).")
        order = most_bound_first(rule, frozenset())
        assert sorted(map(repr, order)) == sorted(map(repr, rule.body))

    def test_binding_equality_is_scheduled(self):
        rule = parse_rule("h(X, Y) :- e(X, Y), Z = 3, Z < Y.")
        order = most_bound_first(rule, frozenset())
        # Z = 3 binds Z, so Z < Y becomes evaluable after e.
        assert [repr(i) for i in order] == ["Z = 3", "e(X, Y)", "Z < Y"]


class TestRegistry:
    def test_known_strategies(self):
        assert set(STRATEGIES) == {"left-to-right", "most-bound"}
        assert get_sips("left-to-right") is left_to_right
        assert get_sips("most-bound") is most_bound_first

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown SIPS"):
            get_sips("right-to-left")


class TestCheckPermutation:
    def test_accepts_reordering(self):
        rule = parse_rule("h(X, Y) :- e(X, Z), f(Z, Y).")
        reordered = (rule.body[1], rule.body[0])
        assert check_permutation(rule, reordered) == reordered

    def test_rejects_dropped_items(self):
        rule = parse_rule("h(X, Y) :- e(X, Z), f(Z, Y).")
        with pytest.raises(ValueError, match="invalid body permutation"):
            check_permutation(rule, (rule.body[0],))
