"""Binding-pattern adornment: patterns, propagation, naming."""

import pytest

from repro.datalog.parser import parse_atom, parse_program
from repro.datalog.terms import Variable
from repro.magic.adorn import (
    adorn_program,
    adorned_name,
    adornment_of,
    bound_args,
    bound_variables,
)
from repro.magic.sips import most_bound_first

TC = """
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
"""


class TestAdornmentOf:
    def test_constants_are_bound(self):
        assert adornment_of(parse_atom("p(1, Y)"), frozenset()) == "bf"

    def test_bound_variables_are_bound(self):
        atom = parse_atom("p(X, Y)")
        assert adornment_of(atom, frozenset({Variable("X")})) == "bf"
        assert adornment_of(atom, frozenset({Variable("X"), Variable("Y")})) == "bb"

    def test_all_free(self):
        assert adornment_of(parse_atom("p(X, Y)"), frozenset()) == "ff"

    def test_helpers(self):
        atom = parse_atom("p(1, Y)")
        assert adorned_name("p", "bf") == "p__bf"
        assert bound_args(atom, "bf") == (atom.args[0],)
        assert bound_variables(atom, "bf") == frozenset()
        assert bound_variables(parse_atom("p(X, Y)"), "bf") == {Variable("X")}


class TestAdornProgram:
    def test_transitive_closure_bf(self):
        program = parse_program(TC, query="p")
        adorned = adorn_program(program, parse_atom("p(1, Y)"))
        assert adorned.adorned_query == "p__bf"
        assert adorned.query_adornment == "bf"
        assert adorned.patterns() == {"p": ("bf",)}
        texts = {repr(rule) for rule in adorned.program.rules}
        assert texts == {
            "p__bf(X, Y) :- e(X, Y).",
            "p__bf(X, Y) :- e(X, Z), p__bf(Z, Y).",
        }

    def test_right_recursion_spawns_free_pattern(self):
        # With left-to-right SIPS, p(Z, Y) before e binds nothing: ff.
        program = parse_program(
            "p(X, Y) :- e(X, Y). p(X, Y) :- p(X, Z), e(Z, Y).", query="p"
        )
        adorned = adorn_program(program, parse_atom("p(X, 9)"))
        assert adorned.query_adornment == "fb"
        assert adorned.patterns() == {"p": ("fb", "ff")}

    def test_most_bound_sips_changes_subgoal_adornment(self):
        program = parse_program(
            "q(X, Y) :- p(Z, Y), e(X, Z). p(X, Y) :- f(X, Y).", query="q"
        )
        left = adorn_program(program, parse_atom("q(1, Y)"))
        assert left.patterns()["p"] == ("ff",)
        greedy = adorn_program(
            program, parse_atom("q(1, Y)"), sips=most_bound_first
        )
        # e(X, Z) runs first under the greedy SIPS, binding Z for p.
        assert greedy.patterns()["p"] == ("bf",)

    def test_idb_subgoal_records(self):
        program = parse_program(TC, query="p")
        adorned = adorn_program(program, parse_atom("p(1, Y)"))
        recursive = [ar for ar in adorned.rules if ar.idb_subgoals]
        assert len(recursive) == 1
        ((index, predicate, pattern),) = recursive[0].idb_subgoals
        assert (predicate, pattern) == ("p", "bf")
        assert recursive[0].rule.body[index].predicate == "p__bf"

    def test_name_collision_avoided(self):
        program = parse_program(
            "p__bf(X) :- e(X, X). p(X, Y) :- e(X, Y), p__bf(Y).", query="p"
        )
        adorned = adorn_program(program, parse_atom("p(1, Y)"))
        names = set(adorned.names.values())
        assert "p__bf" not in names  # taken by the user's own predicate
        assert adorned.name_of("p", "bf").startswith("p__bf")

    def test_non_idb_query_atom_rejected(self):
        program = parse_program(TC, query="p")
        with pytest.raises(ValueError, match="IDB predicate"):
            adorn_program(program, parse_atom("e(1, Y)"))

    def test_arity_mismatch_rejected(self):
        program = parse_program(TC, query="p")
        with pytest.raises(ValueError, match="arity"):
            adorn_program(program, parse_atom("p(1)"))

    def test_filters_preserved_in_adorned_bodies(self):
        program = parse_program(
            "p(X, Y) :- e(X, Y), X < Y, not blocked(X).", query="p"
        )
        adorned = adorn_program(program, parse_atom("p(1, Y)"))
        (rule,) = adorned.program.rules
        assert repr(rule) == "p__bf(X, Y) :- e(X, Y), X < Y, not blocked(X)."
