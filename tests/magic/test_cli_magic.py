"""CLI coverage for the ``magic`` and ``pipeline`` commands."""

import pytest

from repro.cli import main

PROGRAM = """
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
"""

CONSTRAINTS = ":- e(X, Y), blocked(X)."

FACTS = "e(1, 2). e(2, 3). e(10, 11)."


@pytest.fixture()
def files(tmp_path):
    paths = {}
    for name, content in {
        "program.dl": PROGRAM,
        "ics.dl": CONSTRAINTS,
        "facts.dl": FACTS,
    }.items():
        path = tmp_path / name
        path.write_text(content)
        paths[name] = str(path)
    return paths


class TestMagicCommand:
    def test_summary_and_program(self, files, capsys):
        assert main(["magic", files["program.dl"], "--goal", "p(1, Y)"]) == 0
        out = capsys.readouterr().out
        assert "m_p__bf(1)" in out
        assert "p__bf(X, Y) :- m_p__bf(X), e(X, Y)." in out

    def test_answers_and_compare(self, files, capsys):
        assert main([
            "magic", files["program.dl"], "--goal", "p(1, Y)",
            "--data", files["facts.dl"], "--compare",
        ]) == 0
        out = capsys.readouterr().out
        assert "answers (2):" in out
        assert "p(1, 2)" in out and "p(1, 3)" in out
        assert "magic work:" in out
        assert "original work:" in out
        assert "answers match" in out

    def test_sips_flag(self, files, capsys):
        assert main([
            "magic", files["program.dl"], "--goal", "p(1, Y)",
            "--sips", "most-bound",
        ]) == 0
        assert "m_p__bf(1)" in capsys.readouterr().out

    def test_bad_goal_exits(self, files, capsys):
        assert main(["magic", files["program.dl"], "--goal", "p(1,"]) == 2
        assert "cannot parse --goal" in capsys.readouterr().err


class TestPipelineCommand:
    @pytest.mark.parametrize(
        "order", ["semantic-first", "magic-first", "magic-only", "semantic-only"]
    )
    def test_orders_compare_clean(self, files, capsys, order):
        assert main([
            "pipeline", files["program.dl"], "--constraints", files["ics.dl"],
            "--goal", "p(1, Y)", "--order", order,
            "--data", files["facts.dl"], "--compare",
        ]) == 0
        out = capsys.readouterr().out
        assert f"pipeline order: {order}" in out
        assert "answers match" in out

    def test_no_constraints_defaults_to_magic_pruning(self, files, capsys):
        assert main([
            "pipeline", files["program.dl"], "--goal", "p(10, Y)",
            "--data", files["facts.dl"],
        ]) == 0
        out = capsys.readouterr().out
        assert "answers (1):" in out
        assert "p(10, 11)" in out

    def test_unsatisfiable_query(self, files, tmp_path, capsys):
        unsat = tmp_path / "unsat.dl"
        unsat.write_text("q(X) :- s(X), bad(X).")
        ics = tmp_path / "unsat_ics.dl"
        ics.write_text(":- s(X), bad(X).")
        assert main([
            "pipeline", str(unsat), "--constraints", str(ics), "--goal", "q(1)",
        ]) == 0
        out = capsys.readouterr().out
        assert "query unsatisfiable" in out
