"""Pipeline orders: equivalence on canonical + random workloads."""

import pytest

from repro import parse_atom, parse_constraints, parse_program
from repro.datalog.atoms import Atom
from repro.datalog.evaluation import evaluate
from repro.datalog.terms import Constant, Variable
from repro.magic import assert_equivalent, check_equivalence, run_pipeline
from repro.magic.pipeline import PIPELINE_ORDERS, query_atom_answers
from repro.magic.sips import most_bound_first
from repro.workloads import (
    ab_database,
    ab_transitive_closure,
    flight_database,
    flight_routes,
    good_path_database,
    good_path_order_constraints,
    random_workload,
    same_generation,
    same_generation_database,
    taint_analysis,
    taint_database,
)


def _bound_atom(predicate, constant, arity):
    args = (Constant(constant),) + tuple(
        Variable(f"V{i}") for i in range(arity - 1)
    )
    return Atom(predicate, args)


def _workloads():
    program, ics = ab_transitive_closure()
    yield "ab", program, ics, ab_database(seed=1), _bound_atom("p", 0, 2)

    program, ics = good_path_order_constraints()
    db = good_path_database(num_chains=3, chain_length=8, seed=1)
    start = min(row[0] for row in db.relation("startPoint", 1))
    yield "goodPath", program, ics, db, _bound_atom("goodPath", start, 2)

    program, ics = same_generation()
    db = same_generation_database(depth=4, fanout=2, seed=1)
    yield "sg", program, ics, db, _bound_atom("query", 2, 2)

    program, ics = taint_analysis()
    db = taint_database(variables=30, flows=60, seed=1)
    sink = min(row[0] for row in db.relation("sink", 1))
    yield "taint", program, ics, db, _bound_atom("alarm", sink, 1)

    program, ics = flight_routes()
    yield "flight", program, ics, flight_database(seed=1), _bound_atom(
        "trip", 2, 2
    )


WORKLOADS = {name: rest for name, *rest in _workloads()}


@pytest.mark.parametrize("order", PIPELINE_ORDERS)
@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_all_orders_preserve_answers(name, order):
    program, ics, database, atom = WORKLOADS[name]
    report = run_pipeline(program, ics, atom, order=order)
    assert report.satisfiable
    assert_equivalent(program, report, atom, database)


@pytest.mark.parametrize("seed", range(8))
def test_random_workloads_preserve_answers(seed):
    """Seeded random programs: magic alone and composed with the
    semantic rewrite answer exactly like the original."""
    program, database, atom = random_workload(seed)
    for order in ("magic-only", "semantic-first"):
        report = run_pipeline(program, (), atom, order=order)
        assert_equivalent(program, report, atom, database)


@pytest.mark.parametrize("name", ["ab", "goodPath", "sg"])
def test_magic_reduces_work_on_bound_queries(name):
    program, ics, database, atom = WORKLOADS[name]
    baseline = evaluate(program, database)
    for order in ("magic-only", "semantic-first"):
        report = run_pipeline(program, ics, atom, order=order)
        check = check_equivalence(program, report, atom, database)
        assert check.equivalent
        assert check.transformed_stats.facts_derived < baseline.stats.facts_derived


def test_sips_option_is_honored():
    program, ics, database, atom = WORKLOADS["sg"]
    report = run_pipeline(
        program, ics, atom, order="magic-only", sips=most_bound_first
    )
    assert_equivalent(program, report, atom, database)


def test_unsatisfiable_query_yields_empty_program():
    program = parse_program("q(X) :- s(X), bad(X).", query="q")
    ics = parse_constraints(":- s(X), bad(X).")
    from repro.datalog.database import Database

    db = Database()
    db.add_row("s", (1,))
    atom = parse_atom("q(1)")
    for order in ("semantic-first", "magic-first"):
        report = run_pipeline(program, ics, atom, order=order)
        assert not report.satisfiable
        assert report.program is None
        assert report.answer_predicate is None
        assert report.answers(db) == frozenset()
        # The original derives nothing on a consistent database either.
        check = check_equivalence(program, report, atom, db)
        assert check.equivalent
        assert "unsatisfiable" in report.summary()


def test_unknown_order_rejected():
    program, ics, _, atom = WORKLOADS["ab"]
    with pytest.raises(ValueError, match="unknown pipeline order"):
        run_pipeline(program, ics, atom, order="magic-sandwich")


def test_non_idb_query_atom_rejected():
    program, ics, _, _ = WORKLOADS["ab"]
    with pytest.raises(ValueError, match="IDB predicate"):
        run_pipeline(program, ics, parse_atom("edge(1, Y)"), order="magic-only")


def test_stages_reflect_the_order():
    program, ics, database, atom = WORKLOADS["ab"]
    report = run_pipeline(program, ics, atom, order="semantic-first")
    assert [s.name for s in report.stages] == ["semantic rewrite", "magic transform"]
    report = run_pipeline(program, ics, atom, order="magic-first")
    assert [s.name for s in report.stages] == ["magic transform", "semantic rewrite"]
    report = run_pipeline(program, ics, atom, order="magic-only")
    assert [s.name for s in report.stages] == ["magic transform"]
    assert report.magic is not None and report.semantic_report is None
    text = report.summary()
    assert "pipeline order: magic-only" in text
    assert "final program" in text


def test_query_atom_answers_filters_rows():
    program, _, database, _ = WORKLOADS["ab"]
    bound = parse_atom("p(0, Y)")
    rows, result = query_atom_answers(program, database, bound)
    assert rows == {r for r in result.query_rows() if r[0] == 0}


def test_equivalence_check_reports_work():
    program, ics, database, atom = WORKLOADS["ab"]
    report = run_pipeline(program, ics, atom, order="magic-only")
    check = check_equivalence(program, report, atom, database)
    text = check.work_summary()
    assert "original:" in text and "transformed:" in text
    assert check.missing == frozenset() and check.extra == frozenset()
