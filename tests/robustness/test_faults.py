"""The chaos harness: deterministic faults at the engine's trace sites.

Covers four distinct injection sites (``plan``, ``index_build``,
``span:scc``, ``span:pipeline.stage``) plus the optimizer span, and
asserts each one degrades exactly like a real budget trip: partial
fixpoints out of the evaluation engine, skipped stages in the pipeline,
the residue-only rung in the optimizer.
"""

import pytest

from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_atom
from repro.magic.pipeline import run_pipeline
from repro.observability import RingBufferSink
from repro.robustness import Budget, FaultInjector, InjectedFault
from repro.robustness.faults import chaos
from repro.workloads.generators import good_path_bidirectional_database
from repro.workloads.programs import good_path


@pytest.fixture()
def workload():
    program, constraints = good_path()
    database = good_path_bidirectional_database(num_chains=2, chain_length=8, seed=0)
    return program, constraints, database


def _full_rows(program, database):
    result = evaluate(program, database.copy())
    return {pred: rel.rows() for pred, rel in result.idb.items()}


class TestInjector:
    def test_occurrences_start_at_one(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.arm("plan", at=0)

    def test_arm_fires_the_exact_occurrence(self):
        injector = FaultInjector().arm("plan", at=3)
        injector.observe("plan", {})
        injector.observe("plan", {})
        with pytest.raises(InjectedFault) as info:
            injector.observe("plan", {})
        assert info.value.site == "plan"
        assert info.value.occurrence == 3
        assert injector.fired == [("plan", 3)]

    def test_sites_are_counted_independently(self):
        injector = FaultInjector().arm("index_build", at=1)
        injector.observe("plan", {})
        with pytest.raises(InjectedFault):
            injector.observe("index_build", {})
        assert injector.counts == {"plan": 1, "index_build": 1}

    def test_arm_random_is_deterministic_by_seed(self):
        def fire_pattern(seed):
            injector = FaultInjector(seed).arm_random("iteration", rate=0.3)
            pattern = []
            for _ in range(50):
                try:
                    injector.observe("iteration", {})
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        assert fire_pattern(7) == fire_pattern(7)
        assert fire_pattern(7) != fire_pattern(8)


class TestEvaluationFaults:
    @pytest.mark.parametrize("site", ["plan", "index_build", "span:scc"])
    def test_fault_yields_partial_subset(self, workload, site):
        program, _, database = workload
        full = _full_rows(program, database)
        injector = FaultInjector().arm(site)
        with chaos(injector):
            with pytest.raises(InjectedFault) as info:
                evaluate(program, database.copy())
        exc = info.value
        assert exc.site == site
        assert exc.partial is not None and exc.stats is not None
        assert exc.stats.budget_trips == 1
        for pred, rel in exc.partial.idb.items():
            assert rel.rows() <= full.get(pred, frozenset())
        assert injector.fired == [(site, 1)]

    def test_fault_is_reported_like_a_budget_trip(self, workload):
        program, _, database = workload
        sink = RingBufferSink()
        injector = FaultInjector().arm("span:scc")
        with chaos(injector, sink):
            with pytest.raises(InjectedFault):
                evaluate(program, database.copy())
        names = [record.name for record in sink]
        assert "budget.trip" in names

    def test_later_occurrence_faults_later(self, workload):
        # Same site, later occurrence: more of the fixpoint survives.
        program, _, database = workload
        first = FaultInjector().arm("iteration", at=1)
        with chaos(first):
            with pytest.raises(InjectedFault) as early:
                evaluate(program, database.copy())
        later = FaultInjector().arm("iteration", at=3)
        with chaos(later):
            with pytest.raises(InjectedFault) as late:
                evaluate(program, database.copy())
        early_facts = early.value.stats.facts_derived
        late_facts = late.value.stats.facts_derived
        assert early_facts <= late_facts


class TestPipelineFaults:
    def test_faulted_stage_is_skipped_and_magic_still_runs(self, workload):
        program, constraints, _ = workload
        injector = FaultInjector().arm("span:pipeline.stage", at=1)
        with chaos(injector):
            report = run_pipeline(
                program,
                constraints,
                parse_atom("goodPath(1, Y)"),
                budget=Budget(max_facts=10**9),
            )
        (step,) = report.fallback_chain
        assert step.stage == "semantic rewrite"
        assert step.fell_back_to == "skip stage"
        assert "injected fault" in step.reason
        # The magic stage still ran, on the unrewritten program.
        assert [s.name for s in report.stages] == ["magic transform"]
        assert report.magic is not None
        assert report.satisfiable is True

    def test_optimizer_fault_degrades_to_residue_only(self, workload):
        program, constraints, _ = workload
        injector = FaultInjector().arm("span:optimize.adornments", at=1)
        with chaos(injector):
            from repro.core.rewrite import optimize

            report = optimize(program, constraints, budget=Budget(max_facts=10**9))
        (step,) = report.fallback_chain
        assert step.fell_back_to == "residue-only rewrite"
        assert "injected fault" in step.reason
        assert report.program is not None

    def test_chaos_restores_the_previous_tracer(self):
        from repro.observability import get_tracer

        before = get_tracer()
        with chaos(FaultInjector()):
            assert get_tracer() is not before
        assert get_tracer() is before
