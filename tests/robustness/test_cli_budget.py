"""The CLI's budget flags and its exit-code contract.

Exit codes: 0 success, 1 budget exceeded (partial results were printed
to stderr as diagnostics), 2 usage/input error.  A tripped budget must
never escape as a traceback.
"""

import json

import pytest

from repro.cli import main

PROGRAM = """
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
"""

CONSTRAINTS = ":- e(X, Y), Y <= X."


def _facts(n=40):
    return "\n".join(f"e({i}, {i + 1})." for i in range(n)) + "\n"


@pytest.fixture()
def files(tmp_path):
    paths = {}
    for name, content in {
        "program.dl": PROGRAM,
        "ics.dl": CONSTRAINTS,
        "facts.dl": _facts(),
    }.items():
        path = tmp_path / name
        path.write_text(content)
        paths[name] = str(path)
    return paths


class TestRunExitCodes:
    def test_unbudgeted_run_exits_zero(self, files, capsys):
        code = main(
            ["run", files["program.dl"], "--query", "p", "--data", files["facts.dl"]]
        )
        assert code == 0
        assert "answers" in capsys.readouterr().out

    def test_generous_budget_exits_zero(self, files):
        assert main([
            "run", files["program.dl"], "--query", "p", "--data", files["facts.dl"],
            "--timeout", "60", "--max-facts", "1000000",
        ]) == 0

    def test_tiny_timeout_exits_one_with_partial_diagnostics(self, files, capsys):
        code = main([
            "run", files["program.dl"], "--query", "p", "--data", files["facts.dl"],
            "--timeout", "0.000001",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "aborted:" in captured.err
        assert "partial results:" in captured.err
        assert "Traceback" not in captured.err

    def test_tiny_fact_budget_exits_one(self, files, capsys):
        code = main([
            "run", files["program.dl"], "--query", "p", "--data", files["facts.dl"],
            "--max-facts", "1",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "max_facts" in captured.err or "facts" in captured.err

    def test_tiny_iteration_budget_exits_one(self, files, capsys):
        code = main([
            "run", files["program.dl"], "--query", "p", "--data", files["facts.dl"],
            "--max-iterations", "1",
        ])
        assert code == 1
        assert "partial" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "nope.dl"), "--query", "p"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_query_exits_two(self, files, capsys):
        code = main(["run", files["program.dl"], "--data", files["facts.dl"]])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestPipelineBudget:
    def test_pipeline_with_tiny_timeout_degrades_but_succeeds(self, files, capsys):
        # Stage skipping is graceful degradation, not failure: with no
        # evaluation requested the command still exits 0 and reports
        # the fallbacks in its summary.
        code = main([
            "pipeline", files["program.dl"], "--constraints", files["ics.dl"],
            "--goal", "p(0, Y)", "--timeout", "0.000001",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "fallback:" in out

    def test_magic_with_generous_budget_matches_unbudgeted(self, files, capsys):
        assert main([
            "magic", files["program.dl"], "--goal", "p(0, Y)",
        ]) == 0
        unbudgeted = capsys.readouterr().out
        assert main([
            "magic", files["program.dl"], "--goal", "p(0, Y)", "--timeout", "60",
        ]) == 0
        assert capsys.readouterr().out == unbudgeted


class TestBenchBudget:
    def test_quick_bench_with_tiny_timeout_exits_one(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main([
            "bench", "--quick", "--timeout", "0.0001", "--json", "--output", str(out),
        ])
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["budget_exceeded"] is True
        # A partial bench is not a fixpoint mismatch.
        assert payload["ok"] is True
        rendered = capsys.readouterr().out
        assert "BUDGET EXCEEDED" in rendered

    def test_quick_bench_unbudgeted_exits_zero(self, tmp_path):
        out = tmp_path / "bench.json"
        code = main(["bench", "--quick", "--json", "--output", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["budget_exceeded"] is False
        assert payload["ok"] is True
