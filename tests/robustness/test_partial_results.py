"""Property: a budget-tripped evaluation yields a *subset* of the fixpoint.

Bottom-up evaluation only ever adds facts (negation is EDB-only), so a
run interrupted at any cooperative checkpoint must hold a partial IDB
contained in the unbounded fixpoint — for every workload, every engine
and every strategy.  Random workloads from the generator module include
negated EDB literals and order atoms, so the property is exercised on
the full program class of the paper.
"""

import pytest

from repro.datalog.evaluation import evaluate
from repro.robustness import (
    Budget,
    BudgetExceededError,
    Cancelled,
    CancellationToken,
)
from repro.workloads.generators import random_database, random_program

SEEDS = range(8)
ENGINES = ("slots", "interpreted")


def _workload(seed):
    program = random_program(seed)
    database = random_database(seed + 1, nodes=10, edges=30)
    return program, database


def _idb_rows(result):
    return {
        predicate: relation.rows() for predicate, relation in result.idb.items()
    }


def _is_subset(partial, full):
    for predicate, rows in partial.items():
        if not rows <= full.get(predicate, frozenset()):
            return False
    return True


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_tiny_fact_budget_yields_partial_subset_of_fixpoint(seed, engine):
    program, database = _workload(seed)
    full = _idb_rows(evaluate(program, database.copy(), engine=engine))
    total = sum(len(rows) for rows in full.values())
    if total < 2:
        pytest.skip("fixpoint too small to interrupt")
    with pytest.raises(BudgetExceededError) as info:
        evaluate(program, database.copy(), engine=engine, budget=Budget(max_facts=1))
    exc = info.value
    assert exc.phase == "evaluate"
    assert exc.partial is not None and exc.stats is not None
    assert exc.stats.budget_trips == 1
    assert exc.stats.wall_time_seconds > 0.0
    partial = _idb_rows(exc.partial)
    assert _is_subset(partial, full)
    assert sum(len(rows) for rows in partial.values()) < total


@pytest.mark.parametrize("strategy", ("seminaive", "naive"))
def test_both_strategies_honor_the_budget(strategy):
    program, database = _workload(3)
    full = _idb_rows(evaluate(program, database.copy(), strategy=strategy))
    with pytest.raises(BudgetExceededError) as info:
        evaluate(
            program,
            database.copy(),
            strategy=strategy,
            budget=Budget(max_facts=1),
        )
    assert _is_subset(_idb_rows(info.value.partial), full)


@pytest.mark.parametrize("engine", ENGINES)
def test_budget_of_exactly_the_fixpoint_cost_never_trips(engine):
    # Running again with limits set to the measured fixpoint cost must
    # reach the same fixpoint without tripping: budgets are strict
    # bounds, not off-by-one tripwires.
    program, database = _workload(0)
    full = evaluate(program, database.copy(), engine=engine)
    bounded = evaluate(
        program,
        database.copy(),
        engine=engine,
        budget=Budget(
            max_iterations=full.stats.iterations,
            max_facts=full.stats.facts_derived,
        ),
    )
    assert _idb_rows(bounded) == _idb_rows(full)
    assert bounded.stats.budget_trips == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_pre_cancelled_token_aborts_with_empty_or_partial_idb(engine):
    program, database = _workload(1)
    full = _idb_rows(evaluate(program, database.copy(), engine=engine))
    token = CancellationToken()
    token.cancel()
    with pytest.raises(Cancelled) as info:
        evaluate(program, database.copy(), engine=engine, cancellation=token)
    assert _is_subset(_idb_rows(info.value.partial), full)


def test_iteration_budget_partial_matches_silent_truncation_shape():
    # The governed max_iterations counts *total* rounds; on a single-SCC
    # program it lines up with the legacy per-SCC bound, so the partial
    # carried by the exception equals the silently truncated result.
    program, database = _workload(2)
    full = evaluate(program, database.copy())
    if full.stats.iterations < 2:
        pytest.skip("need a multi-round fixpoint")
    budget = full.stats.iterations - 1
    with pytest.raises(BudgetExceededError) as info:
        evaluate(program, database.copy(), budget=Budget(max_iterations=budget))
    partial = _idb_rows(info.value.partial)
    assert _is_subset(partial, _idb_rows(full))
    assert info.value.limit == "max_iterations"
