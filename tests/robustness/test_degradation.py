"""The graceful-degradation ladders of optimize() and run_pipeline().

Governed runs degrade instead of failing: full query-tree rewrite ->
residue-only rewrite -> original program (optimizer), and tripped
pipeline stages are skipped with the previous program kept as a sound
input.  Ungoverned runs keep the legacy fail-fast behavior.
"""

import pytest

import repro.core.rewrite as rewrite_module
from repro.core.adornments import AdornmentLimitError
from repro.core.rewrite import optimize
from repro.datalog.parser import parse_atom
from repro.magic.pipeline import run_pipeline
from repro.robustness import (
    Budget,
    BudgetExceededError,
    Cancelled,
    CancellationToken,
    ReproError,
)
from repro.workloads.programs import good_path


@pytest.fixture()
def workload():
    return good_path()


class TestOptimizeLadder:
    def test_ungoverned_run_has_no_fallbacks(self, workload):
        program, constraints = workload
        report = optimize(program, constraints)
        assert report.fallback_chain == ()
        assert report.tree is not None

    def test_ungoverned_adornment_guard_still_raises(self, workload):
        program, constraints = workload
        with pytest.raises(RuntimeError):
            optimize(program, constraints, max_adornments=0)
        # The guard error is also a structured budget error now.
        with pytest.raises(AdornmentLimitError):
            optimize(program, constraints, max_adornments=0)

    def test_expansion_trip_falls_back_to_residue_only(self, workload):
        program, constraints = workload
        report = optimize(program, constraints, budget=Budget(max_expansions=1))
        assert report.satisfiable is True
        assert report.program is not None
        assert report.complete is False
        # The full rewrite was abandoned; its artifacts are absent.
        assert report.adornment_result is None
        assert report.tree is None
        (step,) = report.fallback_chain
        assert step.stage == "query-tree rewrite"
        assert step.fell_back_to == "residue-only rewrite"
        assert "expansion" in step.reason
        # Residue injection still happened: the rewrite differs from the
        # original (the good-path residue Y <= X is attached).
        assert report.program.rules != program.rules

    def test_timeout_zero_falls_back_instead_of_failing(self, workload):
        program, constraints = workload
        report = optimize(program, constraints, budget=Budget(timeout=0.0))
        assert report.satisfiable is True
        assert report.program is not None
        assert len(report.fallback_chain) >= 1
        assert report.fallback_chain[0].fell_back_to == "residue-only rewrite"

    def test_residue_failure_falls_back_to_original_program(
        self, workload, monkeypatch
    ):
        program, constraints = workload

        def broken(*args, **kwargs):
            raise ReproError("synthetic residue failure")

        monkeypatch.setattr(rewrite_module, "constrain_program", broken)
        report = optimize(program, constraints, budget=Budget(max_expansions=1))
        assert report.program is program
        assert report.satisfiable is True
        assert report.complete is False
        stages = [step.fell_back_to for step in report.fallback_chain]
        assert stages == ["residue-only rewrite", "original program"]
        assert "synthetic residue failure" in report.fallback_chain[1].reason

    def test_cancellation_is_never_degraded(self, workload):
        program, constraints = workload
        token = CancellationToken()
        token.cancel()
        with pytest.raises(Cancelled):
            optimize(program, constraints, cancellation=token)

    def test_report_rendering_survives_a_skipped_tree_phase(self, workload):
        program, constraints = workload
        report = optimize(program, constraints, budget=Budget(max_expansions=1))
        assert "skipped by a budget fallback" in report.render_tree()
        summary = report.summary()
        assert any("fallback:" in line for line in summary.splitlines())
        assert "== Budget fallbacks ==" in report.explain()


class TestPipelineDegradation:
    QUERY = "goodPath(1, Y)"

    def test_ungoverned_pipeline_has_no_fallbacks(self, workload):
        program, constraints = workload
        report = run_pipeline(program, constraints, parse_atom(self.QUERY))
        assert report.fallback_chain == ()
        assert report.satisfiable is True

    def test_timeout_zero_skips_every_stage(self, workload):
        program, constraints = workload
        report = run_pipeline(
            program,
            constraints,
            parse_atom(self.QUERY),
            budget=Budget(timeout=0.0),
        )
        # Both stages were skipped; the original program survives.
        assert [step.stage for step in report.fallback_chain] == [
            "semantic rewrite",
            "magic transform",
        ]
        assert all(step.fell_back_to == "skip stage" for step in report.fallback_chain)
        assert report.program is not None
        assert report.program.rules == report.original.rules
        assert report.satisfiable is True
        assert report.stages == ()

    def test_semantic_degradation_is_surfaced_in_the_pipeline_report(self, workload):
        program, constraints = workload
        report = run_pipeline(
            program,
            constraints,
            parse_atom(self.QUERY),
            budget=Budget(max_expansions=1),
        )
        # The semantic stage degraded internally but still ran; its
        # fallback steps bubble up into the pipeline's chain.
        assert any(
            step.fell_back_to == "residue-only rewrite"
            for step in report.fallback_chain
        )
        semantic = next(s for s in report.stages if s.name == "semantic rewrite")
        assert semantic.detail.startswith("degraded:")
        summary = report.summary()
        assert any("fallback:" in line for line in summary.splitlines())

    def test_pipeline_cancellation_propagates(self, workload):
        program, constraints = workload
        token = CancellationToken()
        token.cancel()
        with pytest.raises(Cancelled):
            run_pipeline(
                program, constraints, parse_atom(self.QUERY), cancellation=token
            )

    def test_fact_budget_trips_pipeline_evaluation(self, workload):
        from repro.workloads.generators import good_path_bidirectional_database

        program, constraints = workload
        report = run_pipeline(program, constraints, parse_atom(self.QUERY))
        database = good_path_bidirectional_database(
            num_chains=2, chain_length=8, seed=0
        )
        with pytest.raises(BudgetExceededError) as info:
            report.evaluation(database, budget=Budget(max_facts=1))
        assert info.value.partial is not None
