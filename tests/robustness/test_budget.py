"""Budget, CancellationToken and Governor semantics."""

import pytest

from repro.datalog.evaluation import EvaluationStats
from repro.robustness import (
    Budget,
    BudgetExceededError,
    Cancelled,
    CancellationToken,
)
from repro.robustness.budget import Governor


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestBudget:
    def test_default_is_unlimited(self):
        assert Budget().unlimited is True

    @pytest.mark.parametrize(
        "field", ["timeout", "max_iterations", "max_facts", "max_rows_scanned", "max_expansions"]
    )
    def test_any_single_limit_makes_it_limited(self, field):
        assert Budget(**{field: 1}).unlimited is False

    def test_is_frozen(self):
        with pytest.raises(Exception):
            Budget().timeout = 1.0


class TestGovernorOf:
    def test_none_budget_and_no_token_yields_none(self):
        assert Governor.of(None) is None

    def test_existing_governor_passes_through(self):
        governor = Governor(Budget(max_facts=1))
        assert Governor.of(governor) is governor

    def test_budget_is_wrapped(self):
        governor = Governor.of(Budget(max_facts=1))
        assert isinstance(governor, Governor)
        assert governor.budget.max_facts == 1

    def test_token_alone_yields_an_active_governor(self):
        governor = Governor.of(None, CancellationToken())
        assert governor is not None and governor.active


class TestGovernorCheck:
    def test_inactive_governor_is_a_noop(self):
        governor = Governor(Budget())
        stats = EvaluationStats(iterations=10**9, facts_derived=10**9)
        governor.check("evaluate", stats)  # never raises

    def test_max_iterations_boundary_is_strict(self):
        # A fixpoint that takes exactly N rounds must NOT trip a budget
        # of N; round N+1 must.
        governor = Governor(Budget(max_iterations=3))
        governor.check("evaluate", EvaluationStats(iterations=3))
        with pytest.raises(BudgetExceededError, match="3-iteration"):
            governor.check("evaluate", EvaluationStats(iterations=4))

    def test_max_facts_boundary_is_strict(self):
        governor = Governor(Budget(max_facts=5))
        governor.check("evaluate", EvaluationStats(facts_derived=5))
        with pytest.raises(BudgetExceededError, match="5 facts"):
            governor.check("evaluate", EvaluationStats(facts_derived=6))

    def test_max_rows_scanned(self):
        governor = Governor(Budget(max_rows_scanned=100))
        governor.check("evaluate", EvaluationStats(rows_scanned=100))
        with pytest.raises(BudgetExceededError, match="100 rows"):
            governor.check("evaluate", EvaluationStats(rows_scanned=101))

    def test_trip_records_phase_and_limit(self):
        governor = Governor(Budget(max_facts=1))
        with pytest.raises(BudgetExceededError) as info:
            governor.check("evaluate", EvaluationStats(facts_derived=2))
        assert info.value.phase == "evaluate"
        assert info.value.limit == "max_facts"
        assert governor.tripped is info.value

    def test_timeout_uses_the_injected_clock(self):
        clock = FakeClock()
        governor = Governor(Budget(timeout=10.0), clock=clock)
        clock.now = 9.5
        governor.check("evaluate")
        assert governor.remaining() == pytest.approx(0.5)
        clock.now = 10.5
        with pytest.raises(BudgetExceededError) as info:
            governor.check("evaluate")
        assert info.value.limit == "timeout"

    def test_check_without_stats_only_checks_clock_and_token(self):
        governor = Governor(Budget(max_facts=0))
        governor.check("pipeline")  # no stats -> nothing to compare


class TestCancellation:
    def test_token_round_trip(self):
        token = CancellationToken()
        assert token.cancelled is False
        token.cancel()
        assert token.cancelled is True

    def test_cancelled_raises_before_any_budget_limit(self):
        token = CancellationToken()
        token.cancel()
        governor = Governor(Budget(max_facts=0), token)
        with pytest.raises(Cancelled) as info:
            governor.check("evaluate", EvaluationStats(facts_derived=99))
        assert info.value.limit == "cancelled"


class TestTickAndExpand:
    def test_tick_is_strided(self):
        clock = FakeClock()
        governor = Governor(Budget(timeout=1.0), clock=clock, stride=4)
        clock.now = 2.0  # already past the deadline
        governor.tick("evaluate")
        governor.tick("evaluate")
        governor.tick("evaluate")  # ticks 1-3: no clock read yet
        with pytest.raises(BudgetExceededError):
            governor.tick("evaluate")  # tick 4 hits the stride

    def test_expand_counts_and_trips(self):
        governor = Governor(Budget(max_expansions=2))
        governor.expand("adornments")
        governor.expand("adornments")
        with pytest.raises(BudgetExceededError, match="2-expansion"):
            governor.expand("adornments")
        assert governor.expansions == 3

    def test_expansions_accumulate_across_phases(self):
        # A shared governor anchors one symbolic budget for the whole
        # command: adornment steps and query-tree expansions both count.
        governor = Governor(Budget(max_expansions=3))
        governor.expand("adornments")
        governor.expand("adornments")
        governor.expand("querytree")
        with pytest.raises(BudgetExceededError):
            governor.expand("querytree")
