"""Store behavior: atomicity, quarantine, fault flavors, retry policy."""

import os

import pytest

from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.observability import RingBufferSink, Tracer
from repro.persist.checkpoint import (
    Checkpoint,
    CheckpointCorrupt,
    CheckpointMismatch,
    workload_digest,
)
from repro.persist.store import (
    CheckpointStore,
    CheckpointStoreUnavailable,
    FlakyStore,
    RetryPolicy,
    save_with_retry,
)
from repro.robustness import Budget, BudgetExceededError, FaultInjector, Governor

PROGRAM = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    q(Y) :- path(1, Y).
    """,
    query="q",
)


def _database():
    return Database.from_rows({"edge": [(1, 2), (2, 3), (3, 4)]})


def _checkpoints(n=2):
    snaps = []
    evaluate(PROGRAM, _database(), checkpoint_every=1, checkpoint_sink=snaps.append)
    digest = workload_digest(PROGRAM, _database())
    return [
        Checkpoint(seq=i + 1, workload=digest, snapshot=snap)
        for i, snap in enumerate(snaps[:n])
    ]


def test_save_load_latest_round_trip(tmp_path):
    store = CheckpointStore(tmp_path)
    first, second = _checkpoints(2)
    store.save(first)
    store.save(second)
    assert len(store.paths()) == 2
    assert store.next_seq() == 3
    latest = store.latest()
    assert latest is not None and latest.seq == 2
    loaded = store.load(store.paths()[0])
    assert loaded.seq == 1


def test_save_leaves_no_temp_files(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(_checkpoints(1)[0])
    assert not list(tmp_path.glob("*.tmp"))


def test_corrupt_checkpoint_quarantined_on_load(tmp_path):
    sink = RingBufferSink()
    store = CheckpointStore(tmp_path, tracer=Tracer([sink]))
    (ckpt,) = _checkpoints(1)
    path = store.save(ckpt)
    # Torn write: truncate the file in place.
    path.write_bytes(path.read_bytes()[:50])
    with pytest.raises(CheckpointCorrupt):
        store.load(path)
    assert not path.exists()
    assert path.with_name(path.name + ".corrupt").exists()
    names = [event.name for event in sink]
    assert "checkpoint.quarantine" in names


def test_latest_walks_past_quarantined_to_older_valid(tmp_path):
    store = CheckpointStore(tmp_path)
    first, second = _checkpoints(2)
    store.save(first)
    newest = store.save(second)
    newest.write_text("garbage")
    latest = store.latest()
    assert latest is not None and latest.seq == first.seq
    assert newest.with_name(newest.name + ".corrupt").exists()
    # the corrupt file is never considered again
    assert len(store.paths()) == 1


def test_double_quarantine_keeps_both_forensic_copies(tmp_path):
    """Regression: quarantining a *recreated* file of the same name must
    not clobber the earlier ``.corrupt`` copy — each gets a unique
    suffix and both stay on disk for forensics."""
    store = CheckpointStore(tmp_path)
    (ckpt,) = _checkpoints(1)
    path = store.save(ckpt)
    first_bytes = path.read_bytes()[:50]
    path.write_bytes(first_bytes)
    with pytest.raises(CheckpointCorrupt):
        store.load(path)
    # The same sequence number is written again (a retry after the
    # torn save) and gets corrupted again.
    path = store.save(ckpt)
    second_bytes = path.read_bytes()[:60]
    path.write_bytes(second_bytes)
    with pytest.raises(CheckpointCorrupt):
        store.load(path)
    first = path.with_name(path.name + ".corrupt")
    second = path.with_name(path.name + ".corrupt.1")
    assert first.exists() and second.exists()
    assert first.read_bytes() == first_bytes
    assert second.read_bytes() == second_bytes
    # Neither forensic copy is ever offered as a checkpoint again.
    assert store.paths() == []


def test_workload_mismatch_quarantined(tmp_path):
    store = CheckpointStore(tmp_path)
    (ckpt,) = _checkpoints(1)
    path = store.save(ckpt)
    with pytest.raises(CheckpointMismatch):
        store.load(path, expect_workload="0" * 64)
    assert path.with_name(path.name + ".corrupt").exists()
    assert store.latest(expect_workload="0" * 64) is None


def test_workload_mismatch_not_quarantined_when_read_only(tmp_path):
    """``quarantine_mismatch=False`` (inspect-type reads) must leave a
    foreign workload's valid checkpoint untouched on disk."""
    store = CheckpointStore(tmp_path)
    (ckpt,) = _checkpoints(1)
    path = store.save(ckpt)
    with pytest.raises(CheckpointMismatch):
        store.load(path, expect_workload="0" * 64, quarantine_mismatch=False)
    assert path.exists()
    assert not list(tmp_path.glob("*.corrupt"))
    assert (
        store.latest(expect_workload="0" * 64, quarantine_mismatch=False) is None
    )
    assert path.exists()  # still loadable by its own workload
    assert store.latest(expect_workload=ckpt.workload).seq == ckpt.seq


def test_empty_store_latest_is_none(tmp_path):
    assert CheckpointStore(tmp_path).latest() is None
    assert CheckpointStore(tmp_path / "made" / "up").next_seq() == 1


# ----------------------------------------------------------------------
# FlakyStore fault flavors
# ----------------------------------------------------------------------
def test_flaky_transient_then_success(tmp_path):
    injector = FaultInjector().arm("checkpoint.save", at=1)
    store = FlakyStore(CheckpointStore(tmp_path), injector)
    (ckpt,) = _checkpoints(1)
    with pytest.raises(OSError):
        store.save(ckpt)
    assert store.save(ckpt).exists()
    assert injector.fired == [("checkpoint.save", 1)]


def test_flaky_enospc_flavor(tmp_path):
    import errno

    injector = FaultInjector().arm("checkpoint.save", at=1)
    store = FlakyStore(CheckpointStore(tmp_path), injector, flavors=("enospc",))
    with pytest.raises(OSError) as info:
        store.save(_checkpoints(1)[0])
    assert info.value.errno == errno.ENOSPC
    assert not list(tmp_path.glob("ckpt-*.json"))


def test_flaky_torn_write_lands_truncated_bytes(tmp_path):
    injector = FaultInjector().arm("checkpoint.save", at=1)
    base = CheckpointStore(tmp_path)
    store = FlakyStore(base, injector, flavors=("torn",))
    (ckpt,) = _checkpoints(1)
    with pytest.raises(OSError):
        store.save(ckpt)
    torn = list(tmp_path.glob("ckpt-*.json"))
    assert len(torn) == 1  # truncated bytes really landed on the final path
    with pytest.raises(CheckpointCorrupt):
        base.load(torn[0])
    assert torn[0].with_name(torn[0].name + ".corrupt").exists()


def test_flaky_rejects_unknown_flavor(tmp_path):
    with pytest.raises(ValueError, match="flavor"):
        FlakyStore(CheckpointStore(tmp_path), FaultInjector(), flavors=("explode",))


def test_flaky_load_faults_and_latest_skips(tmp_path):
    base = CheckpointStore(tmp_path)
    first, second = _checkpoints(2)
    base.save(first)
    base.save(second)
    injector = FaultInjector().arm("checkpoint.load", at=1)
    store = FlakyStore(base, injector)
    # the newest load faults transiently; latest() falls through to the older
    latest = store.latest()
    assert latest is not None and latest.seq == first.seq


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
def test_retry_policy_delays_capped_exponential_with_jitter():
    policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.3, jitter=0.5, seed=7)
    delays = list(policy.delays())
    assert len(delays) == 4
    caps = [0.1, 0.2, 0.3, 0.3]
    for delay, cap in zip(delays, caps):
        assert 0.5 * cap <= delay <= 1.5 * cap
    # deterministic for a fixed seed
    assert delays == list(policy.delays())
    # jitter actually varies across attempts
    assert len({round(d / c, 6) for d, c in zip(delays, caps)}) > 1


def test_save_with_retry_recovers(tmp_path):
    injector = FaultInjector().arm("checkpoint.save", at=1, times=2)
    sink = RingBufferSink()
    store = FlakyStore(
        CheckpointStore(tmp_path, tracer=Tracer([sink])), injector
    )
    sleeps = []
    path = save_with_retry(
        store,
        _checkpoints(1)[0],
        policy=RetryPolicy(attempts=4, base_delay=0.001, max_delay=0.002),
        sleep=sleeps.append,
    )
    assert path.exists()
    assert len(sleeps) == 2
    retries = [event for event in sink if event.name == "checkpoint.retry"]
    assert len(retries) == 2
    assert retries[0].attrs["attempt"] == 1


def test_save_with_retry_exhaustion_raises_unavailable(tmp_path):
    injector = FaultInjector().arm_random("checkpoint.save", rate=1.0)
    store = FlakyStore(CheckpointStore(tmp_path), injector)
    with pytest.raises(CheckpointStoreUnavailable, match="after 3 attempts"):
        save_with_retry(
            store,
            _checkpoints(1)[0],
            policy=RetryPolicy(attempts=3, base_delay=0.001, max_delay=0.002),
            sleep=lambda _s: None,
        )


def test_save_with_retry_respects_governor_deadline(tmp_path):
    injector = FaultInjector().arm_random("checkpoint.save", rate=1.0)
    store = FlakyStore(CheckpointStore(tmp_path), injector)
    clock = [0.0]
    governor = Governor(Budget(timeout=10.0), clock=lambda: clock[0])
    sleeps = []

    def sleep(delay):
        sleeps.append(delay)
        clock[0] += delay

    # backoff sleeps are clamped to the remaining deadline
    clock[0] = 9.999
    with pytest.raises(CheckpointStoreUnavailable):
        save_with_retry(
            store,
            _checkpoints(1)[0],
            policy=RetryPolicy(attempts=2, base_delay=5.0, max_delay=5.0, jitter=0.0),
            governor=governor,
            sleep=sleep,
        )
    assert sleeps and sleeps[0] <= 10.0 - 9.999 + 1e-9

    # and once the deadline passes, the governor aborts before retrying
    clock[0] = 10.5
    with pytest.raises(BudgetExceededError):
        save_with_retry(
            store,
            _checkpoints(1)[0],
            policy=RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.002),
            governor=governor,
            sleep=sleep,
        )
