"""Session life cycle: run, resume, ingest, inspect, degradation."""

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_facts, parse_program
from repro.persist import CheckpointStore, FlakyStore, RetryPolicy, Session
from repro.robustness import Budget, BudgetExceededError, FaultInjector

PROGRAM_TEXT = """
path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
q(Y) :- path(1, Y).
"""
EDGES = [(1, 2), (2, 3), (3, 4), (4, 5)]


def _program():
    return parse_program(PROGRAM_TEXT, query="q")


def _database(extra=()):
    return Database.from_rows({"edge": list(EDGES) + list(extra)})


def _rows(result):
    return {pred: rel.rows() for pred, rel in result.idb.items()}


def test_run_writes_checkpoints_and_final_is_complete(tmp_path):
    store = CheckpointStore(tmp_path)
    outcome = Session(_program(), _database(), store=store, checkpoint_every=1).run()
    assert outcome.mode == "fresh"
    assert outcome.checkpoints_written == len(store.paths()) > 1
    latest = store.latest()
    assert latest is not None and latest.complete


def test_resume_from_store_is_row_identical(tmp_path):
    baseline = _rows(Session(_program(), _database()).run().result)
    store = CheckpointStore(tmp_path)
    Session(_program(), _database(), store=store, checkpoint_every=1).run()
    # remove the final (complete) checkpoints so resume really restarts
    # from a mid-fixpoint frontier
    paths = store.paths()
    for path in paths[-2:]:
        path.unlink()
    resumed = Session(
        _program(), _database(), store=CheckpointStore(tmp_path), checkpoint_every=1
    ).resume()
    assert resumed.mode == "resumed"
    assert resumed.resumed_seq is not None
    assert _rows(resumed.result) == baseline


def test_resume_empty_store_falls_back_to_fresh(tmp_path):
    outcome = Session(
        _program(), _database(), store=CheckpointStore(tmp_path), checkpoint_every=1
    ).resume()
    assert outcome.mode == "fresh"
    assert outcome.resumed_seq is None


def test_resume_ignores_checkpoint_of_other_workload(tmp_path):
    Session(_program(), _database(), store=CheckpointStore(tmp_path)).run()
    other_db = _database(extra=[(5, 6)])
    outcome = Session(
        _program(), other_db, store=CheckpointStore(tmp_path)
    ).resume()
    # foreign checkpoints are quarantined, never resumed from
    assert outcome.mode == "fresh"
    assert list(tmp_path.glob("*.corrupt"))


@pytest.mark.parametrize("engine", ("slots", "interpreted"))
def test_ingest_incremental_row_identical_to_recompute(tmp_path, engine):
    session = Session(
        _program(),
        _database(),
        store=CheckpointStore(tmp_path),
        checkpoint_every=1,
        engine=engine,
    )
    session.run()
    outcome = session.ingest([("edge", (5, 6)), ("edge", (0, 1))])
    assert outcome.mode == "incremental"
    assert not outcome.fallback_chain
    recomputed = _rows(
        Session(_program(), _database(extra=[(5, 6), (0, 1)]), engine=engine)
        .run()
        .result
    )
    assert _rows(outcome.result) == recomputed


def test_ingest_from_store_without_in_memory_result(tmp_path):
    Session(_program(), _database(), store=CheckpointStore(tmp_path)).run()
    # a brand-new session (fresh process) ingests off the stored fixpoint
    session = Session(_program(), _database(), store=CheckpointStore(tmp_path))
    outcome = session.ingest(parse_facts("edge(5, 6)."))
    assert outcome.mode == "incremental"
    recomputed = _rows(Session(_program(), _database(extra=[(5, 6)])).run().result)
    assert _rows(outcome.result) == recomputed


def test_ingest_duplicate_facts_is_noop(tmp_path):
    session = Session(_program(), _database(), store=CheckpointStore(tmp_path))
    before = _rows(session.run().result)
    outcome = session.ingest([("edge", (1, 2))])
    assert _rows(outcome.result) == before
    assert outcome.result.stats.iterations == session._last.stats.iterations


def test_ingest_negated_predicate_falls_back_to_recompute():
    program = parse_program(
        """
        p(X, Y) :- e(X, Y), not blocked(X).
        p(X, Y) :- p(X, Z), e(Z, Y), not blocked(Z).
        q(Y) :- p(1, Y).
        """,
        query="q",
    )
    database = Database.from_rows({"e": EDGES, "blocked": [(9,)]})
    session = Session(program, database)
    session.run()
    # blocking node 2 RETRACTS q facts: incremental delta-seeding cannot do that
    outcome = session.ingest([("blocked", (2,))])
    assert outcome.mode == "recompute"
    assert any(s.fell_back_to == "recompute" for s in outcome.fallback_chain)
    fresh_db = Database.from_rows({"e": EDGES, "blocked": [(9,), (2,)]})
    assert _rows(outcome.result) == _rows(Session(program, fresh_db).run().result)


def test_ingest_without_prior_fixpoint_recomputes():
    session = Session(_program(), _database())
    outcome = session.ingest([("edge", (5, 6))])
    assert outcome.mode == "recompute"
    assert _rows(outcome.result) == _rows(
        Session(_program(), _database(extra=[(5, 6)])).run().result
    )


def test_ingest_rejects_idb_predicate():
    session = Session(_program(), _database())
    session.run()
    with pytest.raises(ValueError, match="IDB"):
        session.ingest([("path", (1, 9))])


def test_unrecoverable_store_degrades_to_in_memory(tmp_path):
    injector = FaultInjector().arm_random("checkpoint.save", rate=1.0)
    store = FlakyStore(CheckpointStore(tmp_path), injector)
    outcome = Session(
        _program(),
        _database(),
        store=store,
        checkpoint_every=1,
        retry=RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0),
    ).run()
    assert outcome.checkpoints_written == 0
    assert len(outcome.fallback_chain) == 1  # degraded once, not per snapshot
    step = outcome.fallback_chain[0]
    assert step.stage == "session.checkpoint" and step.fell_back_to == "in-memory"
    # evaluation itself still completed correctly in memory
    assert _rows(outcome.result) == _rows(Session(_program(), _database()).run().result)


def test_budget_trip_during_run_propagates(tmp_path):
    with pytest.raises(BudgetExceededError) as info:
        Session(
            _program(),
            _database(),
            store=CheckpointStore(tmp_path),
            checkpoint_every=1,
            budget=Budget(max_facts=1),
        ).run()
    assert info.value.partial is not None


def test_inspect_summarizes_store(tmp_path):
    session = Session(
        _program(), _database(), store=CheckpointStore(tmp_path), checkpoint_every=1
    )
    info = session.inspect()
    assert info["latest"] is None and info["store"]["checkpoints"] == 0
    session.run()
    info = session.inspect()
    assert info["latest"]["complete"] is True
    assert info["store"]["checkpoints"] >= 1
    assert info["workload"] == session.workload()
    assert info["latest"]["stats"]["facts_derived"] > 0


def test_inspect_is_read_only_across_workloads(tmp_path):
    """Inspecting with a different data file (e.g. pre-ingest) must not
    quarantine the other workload's valid checkpoints."""
    session = Session(_program(), _database(), store=CheckpointStore(tmp_path))
    session.run()
    session.ingest([("edge", (5, 6))])  # complete checkpoint, new digest
    stale = Session(_program(), _database(), store=CheckpointStore(tmp_path))
    info = stale.inspect()
    assert not info["store"]["corrupt"]
    assert not list(tmp_path.glob("*.corrupt"))
    # the stale view still resolves ITS newest checkpoint...
    assert info["latest"] is not None
    # ...and the post-ingest session still finds its own afterwards
    combined = Session(
        _program(), _database(extra=[(5, 6)]), store=CheckpointStore(tmp_path)
    )
    assert combined.inspect()["latest"]["complete"] is True


def test_inspect_without_store():
    info = Session(_program(), _database()).inspect()
    assert info["store"] is None


def test_session_stats_cumulative_and_monotone(tmp_path):
    store = CheckpointStore(tmp_path)
    session = Session(_program(), _database(), store=store, checkpoint_every=1)
    first = session.run()
    for path in store.paths()[-2:]:
        path.unlink()
    resumed = Session(
        _program(), _database(), store=CheckpointStore(tmp_path), checkpoint_every=1
    ).resume()
    # cumulative counters never go backwards across the resume boundary
    assert resumed.stats.facts_derived == first.stats.facts_derived
    assert resumed.stats.iterations >= 1
    assert resumed.stats.wall_time_seconds > 0.0
