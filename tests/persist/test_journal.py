"""IngestJournal mechanics: framing, torn tails, rotation, compaction.

The journal is the durability substrate under ``Session.ingest`` — an
append-only log of CRC-framed records where a record is *acknowledged*
exactly when its fsync returns.  These tests pin the format and the
recovery-relevant invariants directly; crash/recovery semantics through
the session layer live in ``test_recover.py``.
"""

import zlib

import pytest

from repro.observability import RingBufferSink, Tracer
from repro.persist.journal import (
    FlakyJournal,
    IngestJournal,
    JournalRecord,
    JournalUnavailable,
    commit_with_retry,
)
from repro.persist.store import RetryPolicy
from repro.robustness import FaultInjector


def _record(seq, rows=((("edge"), (1, 2)),)):
    return JournalRecord(
        seq=seq, workload="w" * 64, rows=tuple((p, tuple(r)) for p, r in rows)
    )


def test_record_payload_round_trip():
    record = _record(3, rows=[("edge", (1, 2)), ("edge", ("a", "b"))])
    assert JournalRecord.from_payload(record.to_payload()) == record


def test_frame_is_crc_checked():
    record = _record(1)
    frame = record.encode()
    magic, crc, length, payload = frame.split(b" ", 3)
    assert magic == b"J1"
    assert payload.endswith(b"\n")
    body = payload[:-1]
    assert int(length) == len(body)
    assert int(crc, 16) == zlib.crc32(body) & 0xFFFFFFFF


def test_commit_then_reopen_replays_in_order(tmp_path):
    with IngestJournal(tmp_path) as journal:
        for seq in (1, 2, 3):
            journal.commit(_record(seq))
    reopened = IngestJournal(tmp_path)
    assert [r.seq for r in reopened.replay()] == [1, 2, 3]
    assert reopened.next_seq() == 4
    assert [r.seq for r in reopened.replay(after_seq=2)] == [3]


def test_torn_tail_is_truncated_on_open(tmp_path):
    sink = RingBufferSink()
    with IngestJournal(tmp_path) as journal:
        journal.commit(_record(1))
        journal.commit(_record(2))
    (segment,) = sorted(tmp_path.glob("journal-*.log"))
    data = segment.read_bytes()
    # A crash mid-append leaves a partial frame after the fsynced ones.
    segment.write_bytes(data + _record(3).encode()[:11])
    reopened = IngestJournal(tmp_path, tracer=Tracer([sink]))
    assert [r.seq for r in reopened.replay()] == [1, 2]
    assert "journal.truncate" in [event.name for event in sink]
    # The truncated tail is gone from disk, not just skipped in memory.
    assert segment.read_bytes() == data
    # Appending after the truncation extends the clean prefix.
    reopened.commit(_record(3))
    assert [r.seq for r in IngestJournal(tmp_path).replay()] == [1, 2, 3]


def test_corrupted_middle_frame_drops_the_suffix(tmp_path):
    with IngestJournal(tmp_path) as journal:
        journal.commit(_record(1))
        journal.commit(_record(2))
    (segment,) = sorted(tmp_path.glob("journal-*.log"))
    data = bytearray(segment.read_bytes())
    data[len(data) // 4] ^= 0xFF  # flip a bit inside the first frame
    segment.write_bytes(bytes(data))
    # Everything from the corrupt frame on is indistinguishable from a
    # torn tail: replay stops at the last verifiable prefix.
    assert IngestJournal(tmp_path).replay() == []


def test_segment_rotation_and_info(tmp_path):
    journal = IngestJournal(tmp_path, segment_records=2)
    for seq in range(1, 6):
        journal.commit(_record(seq))
    assert len(sorted(tmp_path.glob("journal-*.log"))) == 3
    info = journal.info()
    assert info["records"] == 5
    assert info["last_seq"] == 5
    assert info["lag"] == 5


def test_compaction_removes_only_fully_covered_segments(tmp_path):
    journal = IngestJournal(tmp_path, segment_records=2)
    for seq in range(1, 6):
        journal.commit(_record(seq))
    removed = journal.compact(4)
    assert removed == 2  # segments [1,2] and [3,4]; seq 5 stays
    assert [r.seq for r in journal.replay()] == [5]
    assert journal.lag(4) == 1
    assert journal.lag(5) == 0
    # A fresh open sees the same surviving suffix.
    assert [r.seq for r in IngestJournal(tmp_path).replay()] == [5]
    assert IngestJournal(tmp_path).next_seq() == 6


def test_append_without_sync_is_not_acknowledged(tmp_path):
    journal = IngestJournal(tmp_path)
    journal.commit(_record(1))
    journal.append(_record(2))  # written, never fsynced
    # The unsynced record is invisible to a recovery-style reopen scan
    # of acknowledged state: replay on a fresh handle may see it only
    # if the bytes happened to land, but this handle has not acked it.
    assert journal.last_seq == 1
    journal.sync()
    assert journal.last_seq == 2


def test_retry_after_failed_append_does_not_duplicate(tmp_path):
    journal = IngestJournal(tmp_path)
    journal.commit(_record(1))
    # Simulate a failed attempt: append lands bytes but the fsync never
    # runs (crash window).  The re-attempt must overwrite, not append.
    journal.append(_record(2))
    journal.commit(_record(2))
    assert [r.seq for r in IngestJournal(tmp_path).replay()] == [1, 2]


@pytest.mark.parametrize("site", ["journal.append", "journal.fsync"])
def test_transient_fault_is_retried_to_success(tmp_path, site):
    injector = FaultInjector().arm(site, at=1)
    journal = FlakyJournal(IngestJournal(tmp_path), injector)
    commit_with_retry(
        journal,
        _record(1),
        policy=RetryPolicy(attempts=3, base_delay=0.0, max_delay=0.0),
        sleep=lambda _s: None,
    )
    assert [r.seq for r in journal.replay()] == [1]


def test_exhausted_retries_raise_journal_unavailable(tmp_path):
    injector = FaultInjector().arm_random("journal.append", rate=1.0)
    journal = FlakyJournal(IngestJournal(tmp_path), injector)
    with pytest.raises(JournalUnavailable):
        commit_with_retry(
            journal,
            _record(1),
            policy=RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0),
            sleep=lambda _s: None,
        )
    # Nothing was acknowledged: a recovery replay sees an empty journal.
    assert IngestJournal(tmp_path).replay() == []


def test_fsync_fault_leaves_unacked_record_in_indeterminate_window(tmp_path):
    """A fault *at fsync* means the frame's bytes may already be durable
    even though the commit was never acknowledged.  The journal does not
    pretend otherwise: a reopen may surface the record, and the session
    layer absorbs such un-acked records idempotently during recovery."""
    injector = FaultInjector().arm_random("journal.fsync", rate=1.0)
    journal = FlakyJournal(IngestJournal(tmp_path), injector)
    with pytest.raises(JournalUnavailable):
        commit_with_retry(
            journal,
            _record(1),
            policy=RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0),
            sleep=lambda _s: None,
        )
    # Not acknowledged on this handle...
    assert journal.journal.last_seq == 0
    # ...but the complete frame landed, so a reopen sees it.
    assert [r.seq for r in IngestJournal(tmp_path).replay()] == [1]


def test_torn_flavor_leaves_half_frame_that_reopen_truncates(tmp_path):
    inner = IngestJournal(tmp_path)
    inner.commit(_record(1))  # acknowledged before the faults start
    injector = FaultInjector().arm_random("journal.append", rate=1.0)
    journal = FlakyJournal(inner, injector, flavors=("torn",))
    with pytest.raises(JournalUnavailable):
        commit_with_retry(
            journal,
            _record(2),
            policy=RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0),
            sleep=lambda _s: None,
        )
    # The spilled half-frame is scrubbed on the next open; the
    # acknowledged prefix survives byte-for-byte.
    assert [r.seq for r in IngestJournal(tmp_path).replay()] == [1]


def test_enospc_flavor_surfaces_as_oserror(tmp_path):
    import errno

    injector = FaultInjector().arm("journal.append", at=1)
    journal = FlakyJournal(
        IngestJournal(tmp_path), injector, flavors=("enospc",)
    )
    with pytest.raises(OSError) as info:
        journal.commit(_record(1))
    assert info.value.errno == errno.ENOSPC


def test_journal_trace_events(tmp_path):
    sink = RingBufferSink()
    journal = IngestJournal(tmp_path, tracer=Tracer([sink]), segment_records=1)
    journal.commit(_record(1))
    journal.commit(_record(2))
    journal.replay()
    journal.compact(1)
    names = [event.name for event in sink]
    for expected in (
        "journal.append",
        "journal.fsync",
        "journal.replay",
        "journal.compact",
    ):
        assert expected in names, names
