"""Checkpoint format: round trips, checksums, digests, version gates."""

import json

import pytest

from repro.datalog.database import Database
from repro.datalog.evaluation import EvaluationStats, evaluate
from repro.datalog.parser import parse_program
from repro.persist.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointCorrupt,
    fixpoint_digest,
    workload_digest,
)

PROGRAM = parse_program(
    """
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    q(Y) :- path(1, Y).
    """,
    query="q",
)


def _database():
    return Database.from_rows({"edge": [(1, 2), (2, 3), (3, 4)]})


def _snapshot(**overrides):
    snaps = []
    evaluate(PROGRAM, _database(), checkpoint_every=1, checkpoint_sink=snaps.append)
    snap = snaps[0]
    if overrides:
        from dataclasses import replace

        snap = replace(snap, **overrides)
    return snap


def _checkpoint(seq=1):
    return Checkpoint(
        seq=seq, workload=workload_digest(PROGRAM, _database()), snapshot=_snapshot()
    )


def test_encode_decode_round_trip():
    original = _checkpoint()
    text, checksum = original.encode()
    restored = Checkpoint.decode(text)
    assert restored.seq == original.seq
    assert restored.workload == original.workload
    assert restored.version == CHECKPOINT_VERSION
    snap, orig = restored.snapshot, original.snapshot
    assert snap.strategy == orig.strategy
    assert snap.completed_sccs == orig.completed_sccs
    assert snap.scc_index == orig.scc_index
    assert snap.iteration == orig.iteration
    assert snap.complete == orig.complete
    assert dict(snap.idb) == {p: frozenset(r) for p, r in orig.idb.items()}
    assert dict(snap.delta) == {p: frozenset(r) for p, r in orig.delta.items()}
    assert snap.stats.as_dict() == orig.stats.as_dict()
    # content addressing: re-encoding reproduces the same checksum
    assert restored.encode()[1] == checksum
    assert original.filename() == f"ckpt-00000001-{checksum[:12]}.json"


def test_decode_rejects_bit_flip():
    text, _ = _checkpoint().encode()
    flipped = text.replace('"seq": 1', '"seq": 2', 1)
    with pytest.raises(CheckpointCorrupt, match="checksum mismatch"):
        Checkpoint.decode(flipped)


def test_decode_rejects_truncation_and_garbage():
    text, _ = _checkpoint().encode()
    with pytest.raises(CheckpointCorrupt):
        Checkpoint.decode(text[: len(text) // 2])
    with pytest.raises(CheckpointCorrupt):
        Checkpoint.decode("not json at all")
    with pytest.raises(CheckpointCorrupt, match="envelope"):
        Checkpoint.decode(json.dumps({"payload": {}}))


def test_unsupported_version_is_corrupt():
    payload = _checkpoint().to_payload()
    payload["version"] = CHECKPOINT_VERSION + 1
    with pytest.raises(CheckpointCorrupt, match="version"):
        Checkpoint.from_payload(payload)


def test_malformed_payload_is_corrupt_not_keyerror():
    payload = _checkpoint().to_payload()
    del payload["snapshot"]["idb"]
    with pytest.raises(CheckpointCorrupt, match="malformed"):
        Checkpoint.from_payload(payload)


def test_old_checkpoint_stats_missing_new_fields_load():
    payload = _checkpoint().to_payload()
    # Simulate a checkpoint written before PR-4 counters existed.
    for key in ("budget_trips", "wall_time_seconds"):
        del payload["snapshot"]["stats"][key]
    restored = Checkpoint.from_payload(payload)
    assert restored.snapshot.stats.budget_trips == 0
    assert restored.snapshot.stats.wall_time_seconds == 0.0
    # ...and it still merges/compares cleanly against current stats.
    current = EvaluationStats()
    current.merge(restored.snapshot.stats)
    assert current.compare(restored.snapshot.stats)


def test_workload_digest_sensitivity():
    base = workload_digest(PROGRAM, _database())
    assert base == workload_digest(PROGRAM, _database())  # deterministic
    other_db = _database()
    other_db.add_row("edge", (4, 5))
    assert workload_digest(PROGRAM, other_db) != base
    other_program = parse_program("q(X) :- edge(X, Y).", query="q")
    assert workload_digest(other_program, _database()) != base
    assert workload_digest(PROGRAM, _database(), constraints=("ic1",)) != base


def test_fixpoint_digest_matches_bench():
    from repro.bench import _fixpoint_digest

    result = evaluate(PROGRAM, _database())
    labeled = [("unit", result.idb)]
    assert fixpoint_digest(labeled) == _fixpoint_digest(labeled)


def test_fixpoint_digest_survives_serialization():
    """JSON round trip of the IDB must not change the digest."""
    from repro.datalog.database import Relation

    result = evaluate(PROGRAM, _database())
    before = fixpoint_digest([("unit", result.idb)])
    ckpt = Checkpoint(
        seq=1,
        workload=workload_digest(PROGRAM, _database()),
        snapshot=_snapshot(idb={p: r.rows() for p, r in result.idb.items()}),
    )
    restored = Checkpoint.decode(ckpt.encode()[0])
    idb = {
        pred: Relation(len(next(iter(rows))) if rows else 1, rows)
        for pred, rows in restored.snapshot.idb.items()
    }
    assert fixpoint_digest([("unit", idb)]) == before
