"""RetryPolicy in isolation: jitter determinism, caps, deadline clamps.

The policy backs every durable write (checkpoint saves, journal
commits); until now it was only exercised indirectly through the store
and supervisor suites.  These tests pin its contract directly:
attempt ``k`` sleeps ``min(base_delay * 2**k, max_delay)`` scaled by a
jitter factor drawn from a generator seeded with ``seed``.
"""

import math

import pytest

from repro.persist.journal import JournalUnavailable, commit_with_retry
from repro.persist.store import RetryPolicy
from repro.robustness import Budget, BudgetExceededError, Governor


def test_seeded_jitter_is_deterministic():
    policy = RetryPolicy(attempts=6, base_delay=0.01, max_delay=1.0, jitter=0.5, seed=7)
    assert list(policy.delays()) == list(policy.delays())
    # A different seed draws a different jitter sequence.
    other = RetryPolicy(attempts=6, base_delay=0.01, max_delay=1.0, jitter=0.5, seed=8)
    assert list(policy.delays()) != list(other.delays())


def test_delay_count_is_attempts_minus_one():
    assert len(list(RetryPolicy(attempts=4).delays())) == 3
    assert list(RetryPolicy(attempts=1).delays()) == []
    assert list(RetryPolicy(attempts=0).delays()) == []


def test_delays_grow_exponentially_within_jitter_bounds():
    policy = RetryPolicy(attempts=5, base_delay=0.02, max_delay=10.0, jitter=0.25)
    for attempt, delay in enumerate(policy.delays()):
        base = 0.02 * (2**attempt)
        assert base * 0.75 <= delay <= base * 1.25


def test_max_delay_caps_the_exponential():
    policy = RetryPolicy(
        attempts=10, base_delay=0.02, max_delay=0.1, jitter=0.0, seed=0
    )
    delays = list(policy.delays())
    # 0.02, 0.04, 0.08 then pinned at the cap for every later attempt.
    assert delays[:3] == pytest.approx([0.02, 0.04, 0.08])
    assert all(d == pytest.approx(0.1) for d in delays[3:])
    assert max(delays) <= 0.1 + 1e-12


def test_zero_jitter_is_exactly_the_base_schedule():
    policy = RetryPolicy(attempts=4, base_delay=0.01, max_delay=1.0, jitter=0.0)
    assert list(policy.delays()) == pytest.approx([0.01, 0.02, 0.04])


def test_jitter_never_produces_negative_or_nan_delays():
    policy = RetryPolicy(attempts=8, base_delay=0.005, max_delay=0.5, jitter=1.0, seed=3)
    for delay in policy.delays():
        assert delay >= 0.0
        assert math.isfinite(delay)


class _NeverSyncs:
    """A journal stub whose fsync always fails transiently."""

    class _Tracer:
        enabled = False

    tracer = _Tracer()

    def __init__(self):
        self.attempts = 0

    def commit(self, record):
        self.attempts += 1
        raise OSError("injected")


def test_retry_loop_sleeps_the_policy_schedule(monkeypatch):
    policy = RetryPolicy(attempts=4, base_delay=0.02, max_delay=1.0, jitter=0.0)
    journal = _NeverSyncs()
    slept = []
    with pytest.raises(JournalUnavailable):
        commit_with_retry(journal, None, policy=policy, sleep=slept.append)
    assert journal.attempts == 4
    assert slept == pytest.approx([0.02, 0.04, 0.08])


def test_deadline_clamps_every_backoff_sleep():
    """A governor with little remaining time must clamp each sleep to
    the remaining budget instead of honoring the full schedule."""
    policy = RetryPolicy(attempts=4, base_delay=10.0, max_delay=10.0, jitter=0.0)
    governor = Governor(Budget(timeout=60.0))
    remaining = governor.remaining()
    assert remaining is not None and remaining <= 60.0
    journal = _NeverSyncs()
    slept = []
    with pytest.raises(JournalUnavailable):
        commit_with_retry(
            journal, None, policy=policy, governor=governor, sleep=slept.append
        )
    assert slept and all(s <= remaining for s in slept)


def test_expired_deadline_aborts_before_attempting():
    policy = RetryPolicy(attempts=4, base_delay=0.01, jitter=0.0)
    governor = Governor(Budget(timeout=0.0))
    journal = _NeverSyncs()
    with pytest.raises(BudgetExceededError):
        commit_with_retry(journal, None, policy=policy, governor=governor)
    assert journal.attempts == 0
