"""Property: resuming from any checkpoint reproduces the from-scratch
fixpoint, row for row, and ingesting facts incrementally matches a cold
recompute — across random workloads, both engines, both strategies.

``random_workload`` programs include negated EDB literals and order
atoms, so the ingest property also exercises the non-monotone
recompute fallback (seeds that negate ``blocked`` and then ingest
``blocked`` facts).
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.persist import Session
from repro.workloads.generators import good_path_database, random_workload
from repro.workloads.programs import good_path

ENGINES = ("slots", "interpreted")
STRATEGIES = ("seminaive", "naive")


def _fixpoint(result):
    return {pred: rel.rows() for pred, rel in result.idb.items()}


def _snapshots(program, database, **kwargs):
    snaps = []
    evaluate(
        program,
        database.copy(),
        checkpoint_every=1,
        checkpoint_sink=snaps.append,
        **kwargs,
    )
    return snaps


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(6))
def test_resume_from_every_round_matches_scratch(seed, engine, strategy):
    program, database, _ = random_workload(seed)
    baseline = _fixpoint(
        evaluate(program, database.copy(), engine=engine, strategy=strategy)
    )
    snaps = _snapshots(program, database, engine=engine, strategy=strategy)
    assert snaps and snaps[-1].complete
    for snap in snaps:
        resumed = evaluate(
            program,
            database.copy(),
            engine=engine,
            strategy=strategy,
            resume_from=snap,
        )
        assert _fixpoint(resumed) == baseline


@pytest.mark.parametrize("seed", range(6, 10))
def test_resume_across_engines(seed):
    """Snapshots are engine-agnostic: a frontier captured under the
    compiled engine resumes under the interpreter, and vice versa."""
    program, database, _ = random_workload(seed)
    baseline = _fixpoint(evaluate(program, database.copy()))
    for source, target in (("slots", "interpreted"), ("interpreted", "slots")):
        for snap in _snapshots(program, database, engine=source):
            resumed = evaluate(
                program, database.copy(), engine=target, resume_from=snap
            )
            assert _fixpoint(resumed) == baseline


def test_resume_wrong_strategy_rejected():
    program, database, _ = random_workload(0)
    snap = _snapshots(program, database, strategy="naive")[0]
    with pytest.raises(ValueError, match="strategy"):
        evaluate(program, database.copy(), resume_from=snap)


def test_resume_with_provenance_rejected():
    program, database, _ = random_workload(0)
    snap = _snapshots(program, database)[0]
    with pytest.raises(ValueError, match="provenance"):
        evaluate(program, database.copy(), resume_from=snap, provenance=True)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", range(12))
def test_ingest_matches_cold_recompute(seed, engine):
    """Hold back a third of every EDB relation, evaluate, then ingest
    the held-back facts: the session fixpoint must equal evaluating the
    full database from scratch (incrementally when the workload is
    monotone, via the recompute fallback otherwise)."""
    program, full_db, _ = random_workload(seed)
    base_rows, extra = {}, []
    for pred in sorted(full_db.predicates()):
        rows = sorted(full_db.relation(pred).rows(), key=repr)
        keep = max(1, (2 * len(rows)) // 3)
        base_rows[pred] = rows[:keep]
        extra.extend((pred, row) for row in rows[keep:])
    session = Session(program, Database.from_rows(base_rows), engine=engine)
    session.run()
    outcome = session.ingest(extra)
    assert outcome.mode in ("incremental", "recompute")
    negated = {
        literal.predicate
        for rule in program.rules
        for literal in rule.negative_literals
    }
    if negated & {pred for pred, _ in extra}:
        assert outcome.mode == "recompute"
    baseline = _fixpoint(evaluate(program, full_db.copy(), engine=engine))
    assert _fixpoint(outcome.result) == baseline


def test_example31_resume_every_round_monotone_stats():
    """Example 3.1: resuming from every round boundary yields the same
    fixpoint, and the cumulative counters never decrease — neither
    along the snapshot sequence nor across the resume boundary."""
    program, _ = good_path()
    database = good_path_database(num_chains=2, chain_length=8, seed=3)
    baseline = evaluate(program, database.copy())
    snaps = _snapshots(program, database)
    assert len(snaps) >= 3  # enough round boundaries to be interesting

    monotone_keys = ("facts_derived", "rule_firings", "rows_scanned", "iterations")
    for earlier, later in zip(snaps, snaps[1:]):
        for key in monotone_keys:
            assert getattr(later.stats, key) >= getattr(earlier.stats, key)
        assert later.stats.wall_time_seconds >= earlier.stats.wall_time_seconds

    for snap in snaps:
        resumed = evaluate(program, database.copy(), resume_from=snap)
        assert _fixpoint(resumed) == _fixpoint(baseline)
        # cumulative across the boundary: the resumed run continues the
        # snapshot's counters instead of starting over...
        for key in monotone_keys:
            assert getattr(resumed.stats, key) >= getattr(snap.stats, key)
        assert resumed.stats.wall_time_seconds >= snap.stats.wall_time_seconds
    # ...and resuming from the complete snapshot re-derives nothing.
    final = evaluate(program, database.copy(), resume_from=snaps[-1])
    assert final.stats.facts_derived == snaps[-1].stats.facts_derived
    assert _fixpoint(final) == _fixpoint(baseline)
