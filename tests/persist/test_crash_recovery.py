"""Kill-resume crash tests: a session SIGKILLed mid-fixpoint resumes
from its checkpoints to the verified answer, and damaged checkpoints
are quarantined — never silently used."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.datalog.database import Database
from repro.datalog.parser import parse_program
from repro.persist import CheckpointStore, Session

PROGRAM_TEXT = """
path(X, Y) :- step(X, Y).
path(X, Y) :- path(X, Z), step(Z, Y).
q(Y) :- path(0, Y).
"""
CHAIN = 40  # long enough for many semi-naive rounds


def _write_workload(tmp_path):
    program = tmp_path / "prog.dl"
    program.write_text(PROGRAM_TEXT)
    data = tmp_path / "facts.dl"
    data.write_text(
        "".join(f"step({i}, {i + 1}).\n" for i in range(CHAIN))
    )
    return program, data


def _database():
    return Database.from_rows({"step": [(i, i + 1) for i in range(CHAIN)]})


def _expected_rows():
    program = parse_program(PROGRAM_TEXT, query="q")
    result = Session(program, _database()).run().result
    return {pred: rel.rows() for pred, rel in result.idb.items()}


def _spawn_session(cmd):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [_repo_src(), env.get("PYTHONPATH", "")])
    )
    return subprocess.Popen(
        cmd,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _repo_src():
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _wait_for_checkpoints(ckpt_dir, minimum, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(list(ckpt_dir.glob("ckpt-*.json"))) >= minimum:
            return True
        time.sleep(0.01)
    return False


@pytest.mark.parametrize("engine", ("slots", "interpreted"))
def test_sigkill_mid_fixpoint_then_resume(tmp_path, engine):
    program, data = _write_workload(tmp_path)
    ckpt_dir = tmp_path / "ckpts"
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "session",
        "run",
        str(program),
        "--query",
        "q",
        "--data",
        str(data),
        "--checkpoint-dir",
        str(ckpt_dir),
        "--checkpoint-every",
        "1",
        "--engine",
        engine,
        "--throttle",
        "0.05",  # slow the rounds down so the kill lands mid-fixpoint
    ]
    proc = _spawn_session(cmd)
    try:
        assert _wait_for_checkpoints(ckpt_dir, minimum=2), "no checkpoints appeared"
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)
    assert proc.returncode == -signal.SIGKILL

    # The killed run must not have reached the complete fixpoint.
    store = CheckpointStore(ckpt_dir)
    interrupted = store.latest()
    assert interrupted is not None and not interrupted.complete

    # Resume in-process and verify the answer row for row.
    parsed = parse_program(PROGRAM_TEXT, query="q")
    outcome = Session(
        parsed, _database(), store=CheckpointStore(ckpt_dir), engine=engine
    ).resume()
    assert outcome.mode == "resumed"
    rows = {pred: rel.rows() for pred, rel in outcome.result.idb.items()}
    assert rows == _expected_rows()
    assert CheckpointStore(ckpt_dir).latest().complete


def test_resume_cli_after_kill_round_trips(tmp_path):
    """The whole loop through the command line: run, kill, `session
    resume`, `session inspect` — the resumed store ends complete."""
    program, data = _write_workload(tmp_path)
    ckpt_dir = tmp_path / "ckpts"
    base = [
        sys.executable,
        "-m",
        "repro",
        "session",
    ]
    common = [
        str(program),
        "--query",
        "q",
        "--data",
        str(data),
        "--checkpoint-dir",
        str(ckpt_dir),
        "--checkpoint-every",
        "1",
    ]
    proc = _spawn_session(base + ["run"] + common + ["--throttle", "0.05"])
    try:
        assert _wait_for_checkpoints(ckpt_dir, minimum=2)
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=30)

    env = dict(os.environ, PYTHONPATH=str(_repo_src()))
    resumed = subprocess.run(
        base + ["resume"] + common,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "resumed from checkpoint" in resumed.stdout

    inspected = subprocess.run(
        base + ["inspect"] + common,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert inspected.returncode == 0, inspected.stderr
    info = json.loads(inspected.stdout)
    assert info["latest"]["complete"] is True


def test_resume_with_corrupted_latest_checkpoint_quarantines(tmp_path):
    """Truncate the newest checkpoint (as a torn write would): resume
    quarantines it and restarts from the older valid one."""
    parsed = parse_program(PROGRAM_TEXT, query="q")
    ckpt_dir = tmp_path / "ckpts"
    Session(
        parsed, _database(), store=CheckpointStore(ckpt_dir), checkpoint_every=1
    ).run()
    store = CheckpointStore(ckpt_dir)
    paths = store.paths()
    assert len(paths) >= 3
    # remove the complete checkpoint, then tear the newest remaining one
    paths[-1].unlink()
    torn = store.paths()[-1]
    torn.write_bytes(torn.read_bytes()[: torn.stat().st_size // 2])

    outcome = Session(
        parsed, _database(), store=CheckpointStore(ckpt_dir)
    ).resume()
    assert outcome.mode == "resumed"
    rows = {pred: rel.rows() for pred, rel in outcome.result.idb.items()}
    assert rows == _expected_rows()
    quarantined = list(ckpt_dir.glob("*.corrupt"))
    assert quarantined and torn.name + ".corrupt" in {p.name for p in quarantined}


def test_resume_with_all_checkpoints_destroyed_restarts_fresh(tmp_path):
    parsed = parse_program(PROGRAM_TEXT, query="q")
    ckpt_dir = tmp_path / "ckpts"
    Session(
        parsed, _database(), store=CheckpointStore(ckpt_dir), checkpoint_every=1
    ).run()
    for path in CheckpointStore(ckpt_dir).paths():
        path.write_text("garbage")
    outcome = Session(
        parsed, _database(), store=CheckpointStore(ckpt_dir)
    ).resume()
    assert outcome.mode == "fresh"
    rows = {pred: rel.rows() for pred, rel in outcome.result.idb.items()}
    assert rows == _expected_rows()
