"""Crash recovery: journal replay after faults at every durability site.

Each test stages a crash — an injected fault at ``journal.append`` /
``journal.fsync`` / ``journal.replay`` or at a checkpoint boundary —
then recovers into a *fresh* session (simulating a restart) and checks
the recovered fixpoint digest against a cold recompute over the initial
EDB plus every *acknowledged* ingest.  That digest equality is the
crash-consistency contract: an acked ingest is never lost, an un-acked
one never half-applied.
"""

import pytest

from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_program
from repro.persist import (
    CheckpointStore,
    FlakyStore,
    RetryPolicy,
    Session,
    fixpoint_digest,
)
from repro.persist.journal import (
    FlakyJournal,
    IngestJournal,
    JournalMismatch,
    JournalUnavailable,
)
from repro.robustness import Budget, BudgetExceededError, FaultInjector

PROGRAM_TEXT = """
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- path(X, Z), edge(Z, Y).
    q(Y) :- path(1, Y).
"""
EDGES = [(1, 2), (2, 3), (3, 4)]

#: zero-sleep policy so exhaustion tests stay fast
FAST = RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0)


def _program():
    return parse_program(PROGRAM_TEXT, query="q")


def _database(extra=()):
    return Database.from_rows({"edge": list(EDGES) + list(extra)})


def _cold_digest(extra=(), program=None, database=None):
    """Digest of a from-scratch recompute over initial EDB + ``extra``."""
    result = evaluate(
        program or _program(), database or _database(extra)
    )
    return fixpoint_digest([("recovery", result.idb)])


def _digest(outcome):
    return fixpoint_digest([("recovery", outcome.result.idb)])


@pytest.mark.parametrize("engine", ["slots", "interpreted"])
@pytest.mark.parametrize("storage", ["rows", "columnar"])
def test_checkpoint_crash_recovers_every_acked_ingest(tmp_path, engine, storage):
    """Kill after ack but before the covering checkpoint: the journal
    suffix alone must carry the ingest across the restart."""
    injector = FaultInjector()
    store = FlakyStore(CheckpointStore(tmp_path), injector)
    session = Session(
        _program(),
        _database(),
        store=store,
        engine=engine,
        storage=storage,
        retry=FAST,
    )
    session.run()
    session.ingest([("edge", (4, 5))])  # acked and checkpoint-covered
    injector.arm_random("checkpoint.save", rate=1.0)
    outcome = session.ingest([("edge", (5, 6))])  # acked, checkpoint lost
    assert outcome.fallback_chain  # degraded: no durable checkpoint
    # -- restart --------------------------------------------------------
    fresh = Session(
        _program(),
        _database(),
        store=CheckpointStore(tmp_path),
        engine=engine,
        storage=storage,
    )
    recovered = fresh.recover()
    assert recovered.mode == "recovered"
    assert recovered.replayed >= 1
    assert _digest(recovered) == _cold_digest([(4, 5), (5, 6)])


def test_append_crash_leaves_state_unmutated(tmp_path):
    """A journal failure *before* the fsync is a clean refusal: nothing
    is acknowledged, nothing is mutated, recovery sees no trace."""
    store = CheckpointStore(tmp_path)
    session = Session(_program(), _database(), store=store, retry=FAST)
    session.run()
    injector = FaultInjector().arm_random("journal.append", rate=1.0)
    session.journal = FlakyJournal(session.journal, injector)
    with pytest.raises(JournalUnavailable):
        session.ingest([("edge", (4, 5))])
    assert (4, 5) not in session.database.relation("edge").rows()
    recovered = Session(_program(), _database(), store=store).recover()
    assert recovered.replayed == 0
    assert _digest(recovered) == _cold_digest()


def test_fsync_crash_window_recovers_acked_or_acked_plus_inflight(tmp_path):
    """A crash at fsync is indeterminate: the frame may or may not be
    durable.  Recovery must land on exactly one of the two admissible
    states — acked-only, or acked plus the in-flight record — never a
    torn hybrid."""
    store = CheckpointStore(tmp_path)
    session = Session(_program(), _database(), store=store, retry=FAST)
    session.run()
    injector = FaultInjector().arm_random("journal.fsync", rate=1.0)
    session.journal = FlakyJournal(session.journal, injector)
    with pytest.raises(JournalUnavailable):
        session.ingest([("edge", (4, 5))])
    recovered = Session(_program(), _database(), store=store).recover()
    assert _digest(recovered) in {_cold_digest(), _cold_digest([(4, 5)])}


def test_crash_during_replay_is_retryable(tmp_path):
    """A fault while *reading* the journal during recovery aborts that
    recovery without consuming anything: the next attempt replays the
    identical suffix."""
    store = CheckpointStore(tmp_path)
    Session(_program(), _database(), store=store).run()
    # A store-less writer shares the journal: its ingest is acked but
    # never checkpoint-covered, exactly the state a crash leaves behind.
    writer = Session(
        _program(),
        _database(),
        journal=IngestJournal(tmp_path / "journal"),
    )
    writer.ingest([("edge", (4, 5))])
    injector = FaultInjector().arm("journal.replay", at=1)
    flaky = FlakyJournal(
        IngestJournal(CheckpointStore(tmp_path).directory / "journal"), injector
    )
    crashed = Session(
        _program(), _database(), store=CheckpointStore(tmp_path), journal=flaky
    )
    with pytest.raises(OSError):
        crashed.recover()
    retry = Session(_program(), _database(), store=CheckpointStore(tmp_path))
    recovered = retry.recover()
    assert recovered.replayed == 1
    assert _digest(recovered) == _cold_digest([(4, 5)])


def test_recover_twice_is_idempotent(tmp_path):
    store = CheckpointStore(tmp_path)
    Session(_program(), _database(), store=store).run()
    writer = Session(
        _program(),
        _database(),
        journal=IngestJournal(tmp_path / "journal"),
    )
    writer.ingest([("edge", (4, 5))])
    first = Session(_program(), _database(), store=store).recover()
    assert first.replayed == 1
    second = Session(_program(), _database(), store=store).recover()
    # The first recovery checkpointed and compacted; the second restores
    # warm with nothing left to replay — and the fixpoint is unchanged.
    assert second.replayed == 0
    assert _digest(second) == _digest(first) == _cold_digest([(4, 5)])


def test_foreign_journal_raises_mismatch(tmp_path):
    """A journal whose records chain from a different workload must be
    rejected, not silently replayed into the wrong fixpoint."""
    store = CheckpointStore(tmp_path)
    Session(_program(), _database(), store=store).run()
    writer = Session(
        _program(),
        _database(),
        journal=IngestJournal(tmp_path / "journal"),
    )
    writer.ingest([("edge", (9, 10))])
    foreign = parse_program(
        PROGRAM_TEXT + "\n    r(X) :- edge(X, X).\n", query="q"
    )
    impostor = Session(foreign, _database(), store=store)
    with pytest.raises(JournalMismatch):
        impostor.recover()


def test_budget_trip_mid_recompute_fallback_is_recoverable(tmp_path):
    """Regression for the mutate-before-decision ordering bug: an ingest
    that journals, mutates, then trips its budget inside the recompute
    fallback leaves no durable checkpoint of the new state — but the
    journal already holds the record, so a restart recovers the full
    fixpoint including the interrupted ingest."""
    negation = parse_program(
        """
        reach(X) :- source(X).
        reach(Y) :- reach(X), edge(X, Y).
        ok(X) :- reach(X), not blocked(X).
        """,
        query="ok",
    )
    database = Database.from_rows(
        {"source": [(1,)], "edge": list(EDGES), "blocked": [(3,)]}
    )
    store = CheckpointStore(tmp_path)
    Session(negation, database, store=store).run()
    # Negation forces the recompute fallback on ingest; a one-fact budget
    # trips it after the journal fsync and the EDB mutation.
    tripper = Session(
        negation, database, store=store, budget=Budget(max_facts=1)
    )
    with pytest.raises(BudgetExceededError):
        tripper.ingest([("edge", (4, 5))])
    journal = IngestJournal(store.directory / "journal")
    assert journal.last_seq >= 1  # the record was acknowledged pre-trip
    recovered = Session(negation, database, store=store).recover()
    cold = evaluate(
        negation,
        Database.from_rows(
            {
                "source": [(1,)],
                "edge": list(EDGES) + [(4, 5)],
                "blocked": [(3,)],
            }
        ),
    )
    assert _digest(recovered) == fixpoint_digest([("recovery", cold.idb)])


@pytest.mark.parametrize("storage", ["rows", "columnar"])
def test_recovery_after_compaction_uses_self_contained_checkpoint(
    tmp_path, storage
):
    """Once a covering checkpoint lands and the journal is compacted,
    the checkpoint itself must carry the ingested EDB rows — recovery
    from the initial database alone still yields the full fixpoint."""
    store = CheckpointStore(tmp_path)
    session = Session(_program(), _database(), store=store, storage=storage)
    session.run()
    session.ingest([("edge", (4, 5))])
    session.ingest([("edge", (5, 6))])
    assert session.journal_info()["lag"] == 0  # fully compacted
    recovered = Session(
        _program(), _database(), store=store, storage=storage
    ).recover()
    assert recovered.replayed == 0
    assert _digest(recovered) == _cold_digest([(4, 5), (5, 6)])


def test_journal_only_recovery_without_any_checkpoint(tmp_path):
    """No complete checkpoint at all (every save failed): recovery
    degrades to a full run over initial EDB + journal suffix."""
    injector = FaultInjector().arm_random("checkpoint.save", rate=1.0)
    store = FlakyStore(CheckpointStore(tmp_path), injector)
    session = Session(_program(), _database(), store=store, retry=FAST)
    session.run()
    session.ingest([("edge", (4, 5))])
    recovered = Session(
        _program(), _database(), store=CheckpointStore(tmp_path)
    ).recover()
    assert recovered.replayed == 1
    assert recovered.fallback_chain
    assert _digest(recovered) == _cold_digest([(4, 5)])
