"""Integration tests through the top-level public API only."""

import repro
from repro import (
    Database,
    IntegrityConstraint,
    evaluate,
    evaluate_query,
    is_empty_program,
    is_query_reachable,
    is_satisfiable,
    optimize,
    parse_atom,
    parse_constraints,
    parse_facts,
    parse_program,
    program_contained_in_ucq,
)


class TestVersionAndExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestEndToEnd:
    def test_full_workflow(self):
        program = parse_program(
            """
            path(X, Y) :- step(X, Y).
            path(X, Y) :- step(X, Z), path(Z, Y).
            goodPath(X, Y) :- startPoint(X), path(X, Y), endPoint(Y).
            """,
            query="goodPath",
        )
        constraints = parse_constraints(
            """
            :- startPoint(X), endPoint(Y), Y <= X.
            :- step(X, Y), X >= Y.
            """
        )
        database = Database(
            parse_facts(
                "step(1, 2). step(2, 3). startPoint(1). endPoint(3)."
            )
        )
        report = optimize(program, constraints)
        assert report.satisfiable
        assert report.evaluate(database) == evaluate(program, database).query_rows()
        assert report.evaluate(database) == {(1, 3)}

    def test_decision_procedures(self):
        program = parse_program("q(X) :- a(X, Y), b(Y, Z).", query="q")
        constraints = parse_constraints(":- a(X, Y), b(Y, Z).")
        assert not is_satisfiable(program, constraints)
        assert is_empty_program(program, constraints)
        assert not is_query_reachable(program, constraints, parse_atom("q(U)"))

    def test_containment_api(self):
        from repro.cq import ConjunctiveQuery, UnionOfConjunctiveQueries
        from repro.datalog import parse_rule

        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y).", query="t"
        )
        union = UnionOfConjunctiveQueries(
            (ConjunctiveQuery.from_rule(parse_rule("t(X, Y) :- e(X, Z).")),)
        )
        assert program_contained_in_ucq(program, union)

    def test_constraint_construction_from_api(self):
        from repro.datalog import Atom, Literal, Variable

        X = Variable("X")
        ic = IntegrityConstraint(
            (Literal(Atom("a", (X,))), Literal(Atom("b", (X,))))
        )
        db = Database(parse_facts("a(1). b(2)."))
        from repro.constraints import database_satisfies

        assert database_satisfies([ic], db)

    def test_evaluate_query_helper(self):
        program = parse_program("q(X) :- e(X, X).", query="q")
        db = Database(parse_facts("e(1, 1). e(1, 2)."))
        assert evaluate_query(program, db) == {(1,)}
