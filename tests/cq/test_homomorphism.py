"""Homomorphism-search tests."""

from repro.cq.homomorphism import (
    all_homomorphisms,
    find_homomorphism,
    homomorphism_exists,
)
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Constant, Variable


def atoms(*sources):
    return [parse_atom(s) for s in sources]


class TestFindHomomorphism:
    def test_identity(self):
        hom = find_homomorphism(atoms("e(X, Y)"), atoms("e(X, Y)"))
        assert hom is not None

    def test_folding_onto_one_atom(self):
        # Both source atoms map onto the single target atom.
        hom = find_homomorphism(atoms("e(X, Y)", "e(Y, Z)"), atoms("e(A, A)"))
        assert hom is not None
        assert hom.apply(Variable("X")) == Variable("A")
        assert hom.apply(Variable("Z")) == Variable("A")

    def test_no_hom_between_chain_shapes(self):
        assert find_homomorphism(atoms("e(X, X)"), atoms("e(A, B)")) is None

    def test_constants_must_match(self):
        assert find_homomorphism(atoms("e(1, X)"), atoms("e(2, Y)")) is None
        assert find_homomorphism(atoms("e(1, X)"), atoms("e(1, Y)")) is not None

    def test_initial_binding_respected(self):
        initial = {Variable("X"): Variable("B")}
        hom = find_homomorphism(atoms("e(X, Y)"), atoms("e(A, B)", "e(B, C)"), initial)
        assert hom is not None
        assert hom.apply(Variable("X")) == Variable("B")
        assert hom.apply(Variable("Y")) == Variable("C")

    def test_initial_binding_can_block(self):
        initial = {Variable("X"): Variable("Z9")}
        assert find_homomorphism(atoms("e(X, Y)"), atoms("e(A, B)"), initial) is None


class TestAllHomomorphisms:
    def test_counts(self):
        homs = all_homomorphisms(atoms("e(X, Y)"), atoms("e(A, B)", "e(B, C)"))
        assert len(homs) == 2

    def test_multi_atom_join(self):
        homs = all_homomorphisms(
            atoms("e(X, Y)", "e(Y, Z)"), atoms("e(A, B)", "e(B, C)")
        )
        # X->A,Y->B,Z->C is the only 2-step path.
        assert len(homs) == 1

    def test_deduplication(self):
        homs = all_homomorphisms(atoms("e(X, Y)", "e(X, Y)"), atoms("e(A, B)"))
        assert len(homs) == 1

    def test_exists(self):
        assert homomorphism_exists(atoms("e(X, X)"), atoms("e(A, A)"))
        assert not homomorphism_exists(atoms("f(X)"), atoms("e(A, A)"))

    def test_empty_source_trivial(self):
        assert homomorphism_exists([], atoms("e(A, B)"))
