"""ConjunctiveQuery / UCQ object tests: views, evaluation, freezing."""

import pytest

from repro.cq.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.datalog.database import Database
from repro.datalog.parser import parse_rule
from repro.datalog.terms import Variable


def cq(source: str) -> ConjunctiveQuery:
    return ConjunctiveQuery.from_rule(parse_rule(source))


class TestViews:
    def test_partitioned_body(self):
        query = cq("q(X) :- e(X, Y), not f(Y), X < Y.")
        assert len(query.positive_atoms) == 1
        assert len(query.negative_atoms) == 1
        assert len(query.order_atoms) == 1
        assert query.classification() == {"theta", "not"}

    def test_terms_order_stable(self):
        query = cq("q(X) :- e(X, Y), f(Z, 3).")
        names = [str(t) for t in query.terms()]
        assert names == ["X", "Y", "Z", "3"]

    def test_variables(self):
        query = cq("q(X) :- e(X, Y).")
        assert query.variables() == {Variable("X"), Variable("Y")}

    def test_round_trip_rule(self):
        rule = parse_rule("q(X) :- e(X, Y), X < Y.")
        assert ConjunctiveQuery.from_rule(rule).as_rule() == rule


class TestEvaluation:
    def test_answers(self):
        query = cq("q(X) :- e(X, Y), e(Y, X).")
        db = Database.from_rows({"e": [(1, 2), (2, 1), (3, 4)]})
        assert query.answers(db) == {(1,), (2,)}

    def test_union_answers(self):
        union = UnionOfConjunctiveQueries((cq("q(X) :- a(X)."), cq("q(X) :- b(X).")))
        db = Database.from_rows({"a": [(1,)], "b": [(2,)]})
        assert union.answers(db) == {(1,), (2,)}

    def test_union_head_mismatch_rejected(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries((cq("q(X) :- a(X)."), cq("r(X) :- b(X).")))

    def test_union_needs_members(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries(())


class TestFreeze:
    def test_freeze_produces_canonical_database(self):
        query = cq("q(X) :- e(X, Y), f(Y).")
        frozen = query.freeze()
        assert frozen is not None
        assert frozen.database.size() == 2
        assert len(frozen.head_row) == 1

    def test_freeze_detects_pos_neg_clash(self):
        query = cq("q(X) :- e(X, X), not e(X, X).")
        assert query.freeze() is None

    def test_freeze_with_merge(self):
        from repro.datalog.terms import Substitution

        query = cq("q(X) :- e(X, Y).")
        merged = query.freeze(
            Substitution({Variable("Y"): Variable("X")})
        )
        assert merged is not None
        # e(c, c): a single fact with both positions equal.
        fact = next(iter(merged.database.relation("e")))
        assert fact[0] == fact[1]

    def test_freeze_records_order_atoms(self):
        query = cq("q(X) :- e(X, Y), X < Y.")
        frozen = query.freeze()
        assert frozen is not None
        assert len(frozen.order_atoms) == 1
