"""Direct tests for the partition/linearization machinery."""

import math

import pytest

from repro.cq.configurations import Config, freeze_atoms, linearizations, partitions
from repro.datalog.atoms import OrderAtom
from repro.datalog.parser import parse_atom
from repro.datalog.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


#: Bell numbers B1..B4.
BELL = {1: 1, 2: 2, 3: 5, 4: 15}


class TestPartitions:
    def test_variable_only_counts_are_bell_numbers(self):
        for n, expected in BELL.items():
            terms = [Variable(f"V{i}") for i in range(n)]
            assert len(list(partitions(terms))) == expected

    def test_constants_never_merge(self):
        for partition in partitions([Constant(1), Constant(2), X]):
            assert partition[Constant(1)] != partition[Constant(2)]

    def test_variable_may_join_constant(self):
        found = False
        for partition in partitions([Constant(1), X]):
            if partition[X] == partition[Constant(1)]:
                found = True
        assert found

    def test_deterministic(self):
        first = [dict(p) for p in partitions([X, Y])]
        second = [dict(p) for p in partitions([X, Y])]
        assert first == second


class TestLinearizations:
    def test_counts_without_constants(self):
        partition = {X: 0, Y: 1, Z: 2}
        assert len(list(linearizations(partition))) == math.factorial(3)

    def test_constants_pin_their_order(self):
        partition = {Constant(1): 0, Constant(2): 1, X: 2}
        for position in linearizations(partition):
            assert position[0] < position[1]  # class of 1 before class of 2

    def test_incomparable_families_free(self):
        partition = {Constant(1): 0, Constant("a"): 1}
        assert len(list(linearizations(partition))) == 2


class TestConfig:
    def test_compare_equalities(self):
        config = Config({X: 0, Y: 0, Z: 1}, None)
        assert config.compare(X, Y, "=")
        assert config.compare(X, Z, "!=")

    def test_compare_order(self):
        config = Config({X: 0, Y: 1}, {0: 0, 1: 1})
        assert config.compare(X, Y, "<")
        assert config.compare(Y, X, ">")
        assert config.compare(X, Y, "<=")
        assert not config.compare(Y, X, "<=")

    def test_order_without_linearization_raises(self):
        config = Config({X: 0, Y: 1}, None)
        with pytest.raises(ValueError):
            config.compare(X, Y, "<")

    def test_satisfies(self):
        config = Config({X: 0, Y: 1}, {0: 0, 1: 1})
        assert config.satisfies([OrderAtom(X, "<", Y), OrderAtom(X, "!=", Y)])
        assert not config.satisfies([OrderAtom(Y, "<", X)])


class TestFreezeAtoms:
    def test_classes_become_constants(self):
        frozen = freeze_atoms([parse_atom("e(X, Y)")], {X: 0, Y: 1})
        assert frozen[0].args == (Constant(0), Constant(1))

    def test_merged_classes_share_constant(self):
        frozen = freeze_atoms([parse_atom("e(X, Y)")], {X: 0, Y: 0})
        assert frozen[0].args == (Constant(0), Constant(0))
