"""Containment tests for all three fragments, plus a soundness property:
whenever containment holds, answers agree on random databases."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq.conjunctive import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.cq.containment import (
    ContainmentTooLargeError,
    cq_contained,
    cq_contained_in_union,
    cq_equivalent,
    ucq_contained,
)
from repro.cq.minimize import is_minimal, minimize_cq
from repro.datalog.database import Database
from repro.datalog.parser import parse_rule


def cq(source: str) -> ConjunctiveQuery:
    return ConjunctiveQuery.from_rule(parse_rule(source))


class TestPlainContainment:
    def test_longer_path_contained_in_shorter(self):
        assert cq_contained(cq("q(X) :- e(X, Y), e(Y, Z)."), cq("q(X) :- e(X, Y)."))
        assert not cq_contained(cq("q(X) :- e(X, Y)."), cq("q(X) :- e(X, Y), e(Y, Z)."))

    def test_self_containment(self):
        query = cq("q(X, Y) :- e(X, Z), f(Z, Y).")
        assert cq_contained(query, query)

    def test_head_constants(self):
        assert cq_contained(cq("q(1) :- e(1, Y)."), cq("q(X) :- e(X, Y)."))
        assert not cq_contained(cq("q(X) :- e(X, Y)."), cq("q(1) :- e(1, Y)."))

    def test_body_constants(self):
        assert cq_contained(cq("q(X) :- e(X, 5)."), cq("q(X) :- e(X, Y)."))
        assert not cq_contained(cq("q(X) :- e(X, Y)."), cq("q(X) :- e(X, 5)."))

    def test_different_head_predicates(self):
        assert not cq_contained(cq("q(X) :- e(X)."), cq("r(X) :- e(X)."))

    def test_cycle_contained_in_path(self):
        assert cq_contained(cq("q(X) :- e(X, X)."), cq("q(X) :- e(X, Y)."))
        assert not cq_contained(cq("q(X) :- e(X, Y)."), cq("q(X) :- e(X, X)."))


class TestUnionContainment:
    def test_needs_the_whole_union(self):
        union = UnionOfConjunctiveQueries(
            (cq("q(X) :- e(X, Y), X < Y."), cq("q(X) :- e(X, Y), X >= Y."))
        )
        assert cq_contained_in_union(cq("q(X) :- e(X, Y)."), union)
        # No single member suffices.
        for member in union:
            assert not cq_contained(cq("q(X) :- e(X, Y)."), member)

    def test_plain_union_member_test(self):
        union = UnionOfConjunctiveQueries(
            (cq("q(X) :- a(X)."), cq("q(X) :- b(X)."))
        )
        assert cq_contained_in_union(cq("q(X) :- a(X), c(X)."), union)
        assert not cq_contained_in_union(cq("q(X) :- c(X)."), union)

    def test_ucq_contained(self):
        first = UnionOfConjunctiveQueries((cq("q(X) :- a(X)."),))
        second = UnionOfConjunctiveQueries(
            (cq("q(X) :- a(X)."), cq("q(X) :- b(X)."))
        )
        assert ucq_contained(first, second)
        assert not ucq_contained(second, first)


class TestOrderContainment:
    def test_strict_in_weak(self):
        assert cq_contained(cq("q(X) :- e(X, Y), X < Y."), cq("q(X) :- e(X, Y), X <= Y."))
        assert not cq_contained(cq("q(X) :- e(X, Y), X <= Y."), cq("q(X) :- e(X, Y), X < Y."))

    def test_constants_split_the_line(self):
        union = UnionOfConjunctiveQueries(
            (cq("q(X) :- e(X), X < 5."), cq("q(X) :- e(X), X >= 5."))
        )
        assert cq_contained_in_union(cq("q(X) :- e(X)."), union)

    def test_equality_via_order(self):
        assert cq_contained(cq("q(X) :- e(X, Y), X = Y."), cq("q(X) :- e(X, X)."))
        assert cq_contained(cq("q(X) :- e(X, X)."), cq("q(X) :- e(X, Y), X = Y."))

    def test_unsatisfiable_query_contained_in_anything(self):
        empty = cq("q(X) :- e(X, Y), X < Y, Y < X.")
        assert cq_contained(empty, cq("q(X) :- f(X)."))

    def test_neq_union(self):
        union = UnionOfConjunctiveQueries(
            (cq("q(X) :- e(X, Y), X != Y."), cq("q(X) :- e(X, X)."))
        )
        assert cq_contained_in_union(cq("q(X) :- e(X, Y)."), union)


class TestNegationContainment:
    def test_adding_negation_weakens(self):
        assert cq_contained(cq("q(X) :- e(X, Y), not f(X)."), cq("q(X) :- e(X, Y)."))
        assert not cq_contained(cq("q(X) :- e(X, Y)."), cq("q(X) :- e(X, Y), not f(X)."))

    def test_negation_union_covers(self):
        union = UnionOfConjunctiveQueries(
            (cq("q(X) :- e(X), not f(X)."), cq("q(X) :- e(X), f(X)."))
        )
        assert cq_contained_in_union(cq("q(X) :- e(X)."), union)

    def test_negation_on_both_sides(self):
        first = cq("q(X) :- e(X), not f(X), not g(X).")
        second = cq("q(X) :- e(X), not f(X).")
        assert cq_contained(first, second)
        assert not cq_contained(second, first)


class TestGuards:
    def test_too_many_terms(self):
        big = cq("q(A) :- e(A, B), e(B, C), e(C, D), e(D, E), e(E, F), A < B.")
        with pytest.raises(ContainmentTooLargeError):
            cq_contained(big, cq("q(X) :- e(X, Y), X < Y."), max_terms=4)


class TestMinimize:
    def test_redundant_atom_removed(self):
        query = cq("q(X) :- e(X, Y), e(X, Z).")
        assert len(minimize_cq(query).positive_atoms) == 1

    def test_core_triangle(self):
        # A 3-cycle does not fold onto anything smaller.
        query = cq("q(X) :- e(X, Y), e(Y, Z), e(Z, X).")
        assert is_minimal(query)

    def test_minimize_keeps_equivalence(self):
        query = cq("q(X) :- e(X, Y), e(X, Z), f(Y).")
        minimized = minimize_cq(query)
        assert cq_equivalent(query, minimized)

    def test_head_variable_atoms_kept(self):
        query = cq("q(X, Y) :- e(X, Y), e(X, Z).")
        minimized = minimize_cq(query)
        assert len(minimized.positive_atoms) == 1
        assert minimized.head.variables() <= minimized.positive_atoms[0].variables()


# ----------------------------------------------------------------------
# Soundness property: containment implies answer inclusion.
# ----------------------------------------------------------------------
CANDIDATES = [
    "q(X) :- e(X, Y).",
    "q(X) :- e(X, Y), e(Y, Z).",
    "q(X) :- e(X, X).",
    "q(X) :- e(X, Y), X < Y.",
    "q(X) :- e(X, Y), X <= Y.",
    "q(X) :- e(X, Y), not f(X).",
    "q(X) :- e(X, Y), f(X).",
    "q(X) :- e(Y, X).",
]


@settings(max_examples=60, deadline=None)
@given(
    st.sampled_from(CANDIDATES),
    st.sampled_from(CANDIDATES),
    st.integers(0, 10_000),
)
def test_containment_implies_answer_inclusion(first_src, second_src, seed):
    first, second = cq(first_src), cq(second_src)
    if not cq_contained(first, second):
        return
    rng = random.Random(seed)
    db = Database.from_rows(
        {
            "e": {(rng.randint(0, 3), rng.randint(0, 3)) for _ in range(5)},
            "f": {(rng.randint(0, 3),) for _ in range(2)},
        }
    )
    assert first.answers(db) <= second.answers(db)
