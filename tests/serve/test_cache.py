"""The artifact cache: LRU behavior, counters, thread safety."""

import threading

import pytest

from repro.serve.cache import ArtifactCache


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        ArtifactCache(0)


def test_get_put_and_counters():
    cache = ArtifactCache(4)
    assert cache.get("a") is None
    cache.put("a", 1)
    assert cache.get("a") == 1
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1
    assert stats["evictions"] == 0
    assert len(cache) == 1


def test_lru_evicts_least_recently_used():
    cache = ArtifactCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a; b is now the LRU entry
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.stats()["evictions"] == 1


def test_put_overwrites_without_growing():
    cache = ArtifactCache(2)
    cache.put("a", 1)
    cache.put("a", 2)
    assert len(cache) == 1
    assert cache.get("a") == 2


def test_clear_resets_entries_not_counters():
    cache = ArtifactCache(2)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats()["hits"] == 1


def test_concurrent_access_is_consistent():
    cache = ArtifactCache(16)

    def worker(index: int) -> None:
        for step in range(200):
            key = f"k{(index + step) % 8}"
            if cache.get(key) is None:
                cache.put(key, key)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats = cache.stats()
    assert stats["entries"] <= 8
    assert stats["hits"] + stats["misses"] == 8 * 200
