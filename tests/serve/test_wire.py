"""The wire format: parsing, normalized limit messages, abort payloads.

The satellite claim under test: a malformed ``timeout`` or
``max_facts`` produces the byte-identical message on both transports —
``repro run --timeout banana`` prints it to stderr and exits 2, a POST
body with ``"timeout": "banana"`` returns it as HTTP 400.
"""

import asyncio

import pytest

from repro.cli import main
from repro.robustness import UsageError
from repro.robustness.budget import parse_limit_value, parse_timeout_value
from repro.serve.app import ServeApp
from repro.serve.wire import (
    aborted_payload,
    parse_ingest,
    parse_query,
    parse_register,
    rows_payload,
)

PROGRAM = "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y)."
FACTS = "e(1, 2).\ne(2, 3)."


class TestParseRegister:
    def test_minimal(self):
        request = parse_register({"program": PROGRAM, "facts": FACTS, "query": "p"})
        assert request.program.query == "p"
        assert len(request.facts) == 2
        assert request.engine == "slots"

    def test_body_must_be_object(self):
        with pytest.raises(UsageError, match="JSON object"):
            parse_register([1, 2])

    def test_program_required(self):
        with pytest.raises(UsageError, match="missing required field 'program'"):
            parse_register({})

    def test_bad_program_text(self):
        with pytest.raises(UsageError, match="cannot parse program"):
            parse_register({"program": "p(X :-"})

    def test_bad_engine_choice(self):
        with pytest.raises(UsageError, match="invalid engine"):
            parse_register({"program": PROGRAM, "engine": "turbo"})


class TestParseQuery:
    def test_defaults(self):
        request = parse_query({"goal": "p(1, Y)"})
        assert request.mode == "magic"
        assert request.order == "semantic-first"
        assert request.sips == "left-to-right"
        assert request.timeout is None

    def test_bad_goal(self):
        with pytest.raises(UsageError, match="cannot parse goal"):
            parse_query({"goal": "p(1"})

    def test_bad_mode(self):
        with pytest.raises(UsageError, match="invalid mode"):
            parse_query({"goal": "p(1, Y)", "mode": "psychic"})

    @pytest.mark.parametrize("value", ["banana", -1, 0, "0", False])
    def test_bad_timeout_is_normalized(self, value):
        with pytest.raises(UsageError, match="expected a positive number of seconds"):
            parse_query({"goal": "p(1, Y)", "timeout": value})

    @pytest.mark.parametrize("value", ["many", 0, -3, 2.5])
    def test_bad_max_facts_is_normalized(self, value):
        with pytest.raises(UsageError, match="expected a positive integer"):
            parse_query({"goal": "p(1, Y)", "max_facts": value})


class TestParseIngest:
    def test_facts_required(self):
        with pytest.raises(UsageError, match="missing required field 'facts'"):
            parse_ingest({})

    def test_empty_facts_rejected(self):
        with pytest.raises(UsageError, match="no ground facts"):
            parse_ingest({"facts": "% just a comment"})

    def test_parses(self):
        assert len(parse_ingest({"facts": FACTS}).facts) == 2


class TestNormalizedMessagesSharedWithCli:
    """One normalization helper, two transports, identical bytes."""

    def test_timeout_message_identical(self, capsys):
        assert main(["bench", "--quick", "--timeout", "banana"]) == 2
        cli_message = capsys.readouterr().err.strip()
        with pytest.raises(UsageError) as info:
            parse_timeout_value("banana")
        assert cli_message == f"error: {info.value}"

    def test_max_facts_message_identical(self, capsys):
        assert main(["bench", "--quick", "--max-facts", "0"]) == 2
        cli_message = capsys.readouterr().err.strip()
        with pytest.raises(UsageError) as info:
            parse_limit_value("0", option="max-facts")
        assert cli_message == f"error: {info.value}"

    def test_http_400_carries_the_same_message(self):
        app = ServeApp()

        async def drive():
            await app.handle("PUT", "/programs/t", {"program": PROGRAM, "facts": FACTS})
            return await app.handle(
                "POST", "/programs/t/query", {"goal": "p(1, Y)", "timeout": "banana"}
            )

        status, payload = asyncio.run(drive())
        assert status == 400
        with pytest.raises(UsageError) as info:
            parse_timeout_value("banana")
        assert payload["error"] == str(info.value)


def test_rows_payload_is_sorted_and_json_ready():
    rows = frozenset([(2, 3), (1, 2)])
    assert rows_payload(rows) == [[1, 2], [2, 3]]


def test_aborted_payload_mirrors_cli_diagnostics():
    from repro.datalog.database import Database
    from repro.datalog.evaluation import evaluate
    from repro.datalog.parser import parse_program
    from repro.robustness import Budget, BudgetExceededError, Governor

    program = parse_program(PROGRAM, query="p")
    database = Database()
    for left in range(8):
        database.add_row("e", (left, left + 1))
    with pytest.raises(BudgetExceededError) as info:
        evaluate(program, database, budget=Governor(Budget(max_facts=3)))
    payload = aborted_payload(info.value)
    assert payload["aborted"] is True
    assert payload["limit"] == "max_facts"
    assert payload["partial"]["facts_derived"] >= 3
    assert payload["partial"]["iterations"] >= 0
    assert payload["phase"] == "evaluate"
    assert payload["partial_answers"] >= 0
