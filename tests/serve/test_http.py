"""The HTTP shell and blocking client over a real socket.

One module-scoped daemon (ephemeral port, background event loop);
clients exercise keep-alive, status mapping (400/404/503 as
:class:`ServeClientError`) and concurrent access from real threads.
"""

import asyncio
import threading

import pytest

from repro.serve.app import ServeApp
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.http import ServeDaemon

PROGRAM = "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y)."
FACTS = "\n".join(f"e({i}, {i + 1})." for i in range(8))


@pytest.fixture(scope="module")
def daemon():
    app = ServeApp()
    server = ServeDaemon(app)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def serve():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        ready.set()
        try:
            loop.run_until_complete(server.serve_forever())
        except asyncio.CancelledError:
            pass
        finally:
            loop.run_until_complete(server.stop())
            loop.close()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(timeout=30)
    with ServeClient(server.host, server.port) as client:
        client.register("alpha", PROGRAM, facts=FACTS, query="p")
    yield server
    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=30)
    thread.join(timeout=30)


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.host, daemon.port) as connection:
        yield connection


def test_health_roundtrip(client):
    payload = client.health()
    assert payload["ok"] is True
    assert payload["uptime_seconds"] >= 0


def test_from_url_parses_host_and_port(daemon):
    with ServeClient.from_url(daemon.url) as parsed:
        assert parsed.health()["ok"] is True


def test_query_over_the_wire(client):
    payload = client.query("alpha", "p(0, Y)")
    assert payload["satisfiable"] is True
    assert [0, 8] in payload["answers"]
    assert payload["stats"]["facts_derived"] > 0


def test_keep_alive_reuses_one_connection(client):
    client.health()
    first = client._conn
    client.query("alpha", "p(1, Y)")
    assert client._conn is first


def test_unknown_tenant_is_404(client):
    with pytest.raises(ServeClientError) as info:
        client.query("ghost", "p(0, Y)")
    assert info.value.status == 404


def test_malformed_timeout_is_400_with_normalized_message(client):
    with pytest.raises(ServeClientError) as info:
        client.query("alpha", "p(0, Y)", timeout="banana")
    assert info.value.status == 400
    assert (
        info.value.payload["error"]
        == "invalid timeout 'banana': expected a positive number of seconds"
    )


def test_budget_trip_is_503_with_partial_diagnostics(client):
    with pytest.raises(ServeClientError) as info:
        client.query("alpha", "p(0, Y)", max_facts=1)
    assert info.value.status == 503
    payload = info.value.payload
    assert payload["aborted"] is True
    assert payload["partial"]["facts_derived"] >= 1


def test_ingest_over_the_wire(client):
    client.ingest("alpha", "e(8, 9).")
    payload = client.query("alpha", "p(8, Y)")
    assert [8, 9] in payload["answers"]


def test_stats_over_the_wire(client):
    payload = client.stats()
    assert "alpha" in payload["tenants"]
    assert payload["cache"]["hits"] + payload["cache"]["misses"] > 0


def test_concurrent_thread_clients_agree(daemon):
    expected = None
    with ServeClient(daemon.host, daemon.port) as probe:
        expected = probe.query("alpha", "p(2, Y)")["answers"]
    failures = []

    def worker():
        try:
            with ServeClient(daemon.host, daemon.port) as connection:
                for _ in range(5):
                    answers = connection.query("alpha", "p(2, Y)")["answers"]
                    if answers != expected:
                        failures.append(answers)
        except Exception as exc:  # pragma: no cover - surfaced via failures
            failures.append(repr(exc))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures
