"""Warm restart: a restarted daemon answers without recomputing.

With ``--persist-dir`` every tenant anchors to a per-tenant checkpoint
directory; re-registering the same workload after a restart must
rebuild the fixpoint from the checkpoint with **zero evaluation**
(mode ``warm``) and answer byte-identically.  The checkpoint summary
surfaces ``latest_round`` and ``age_seconds`` together (the satellite
claim shared with ``repro session inspect``).
"""

import asyncio

from repro.serve.app import ServeApp

SPEC = {
    "program": "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).",
    "query": "p",
    "facts": "\n".join(f"e({i}, {i + 1})." for i in range(8)),
}


def drive(app, *requests):
    async def run():
        responses = []
        for method, path, body in requests:
            responses.append(await app.handle(method, path, body))
        return responses

    return asyncio.run(run())


def test_restart_answers_warm_and_byte_identical(tmp_path):
    first = ServeApp(persist_root=tmp_path)
    (status, registered), (_, before) = drive(
        first,
        ("PUT", "/programs/wr", SPEC),
        ("POST", "/programs/wr/query", {"goal": "p(0, Y)", "mode": "materialized"}),
    )
    assert status == 200
    assert registered["mode"] == "fresh"

    # A brand-new app on the same persist root: the daemon restarted.
    second = ServeApp(persist_root=tmp_path)
    (_, reregistered), (_, after) = drive(
        second,
        ("PUT", "/programs/wr", SPEC),
        ("POST", "/programs/wr/query", {"goal": "p(0, Y)", "mode": "materialized"}),
    )
    assert reregistered["mode"] == "warm"
    assert reregistered["resumed_seq"] is not None
    assert reregistered["idb_facts"] == registered["idb_facts"]
    assert reregistered["latest_round"] == registered["latest_round"]
    # Byte-identical answers, and the response says no evaluation ran.
    assert after["answers"] == before["answers"]
    assert after["materialized_mode"] == "warm"


def test_checkpoint_summary_reports_round_and_age(tmp_path):
    app = ServeApp(persist_root=tmp_path)
    (_, registered), (status, inspected) = drive(
        app,
        ("PUT", "/programs/wr", SPEC),
        ("GET", "/programs/wr", None),
    )
    assert status == 200
    checkpoint = inspected["checkpoint"]
    assert checkpoint is not None
    assert checkpoint["complete"] is True
    assert checkpoint["latest_round"] == registered["latest_round"]
    assert checkpoint["age_seconds"] >= 0


def test_changed_workload_does_not_warm_start(tmp_path):
    first = ServeApp(persist_root=tmp_path)
    drive(first, ("PUT", "/programs/wr", SPEC))
    changed = dict(SPEC, facts=SPEC["facts"] + "\ne(100, 101).")
    second = ServeApp(persist_root=tmp_path)
    ((_, reregistered),) = drive(second, ("PUT", "/programs/wr", changed))
    # Different EDB -> different workload digest -> full evaluation.
    assert reregistered["mode"] == "fresh"


def test_ingest_re_anchors_the_warm_start_digest(tmp_path):
    first = ServeApp(persist_root=tmp_path)
    drive(
        first,
        ("PUT", "/programs/wr", SPEC),
        ("POST", "/programs/wr/ingest", {"facts": "e(8, 9)."}),
    )
    # Restart registering the *ingested* EDB: the post-ingest checkpoint
    # anchors it, so the restart is warm against the new digest.
    grown = dict(SPEC, facts=SPEC["facts"] + "\ne(8, 9).")
    second = ServeApp(persist_root=tmp_path)
    (_, reregistered), (_, answer) = drive(
        second,
        ("PUT", "/programs/wr", grown),
        ("POST", "/programs/wr/query", {"goal": "p(0, Y)", "mode": "materialized"}),
    )
    assert reregistered["mode"] == "warm"
    assert [0, 9] in answer["answers"]


def test_tenants_isolate_persist_directories(tmp_path):
    app = ServeApp(persist_root=tmp_path)
    other = {
        "program": "q(X, Y) :- f(X, Y).",
        "query": "q",
        "facts": "f(1, 2).",
    }
    drive(app, ("PUT", "/programs/a", SPEC), ("PUT", "/programs/b", other))
    assert (tmp_path / "a").is_dir()
    assert (tmp_path / "b").is_dir()
    restarted = ServeApp(persist_root=tmp_path)
    (_, alpha), (_, beta) = drive(
        restarted,
        ("PUT", "/programs/a", SPEC),
        ("PUT", "/programs/b", other),
    )
    assert alpha["mode"] == "warm"
    assert beta["mode"] == "warm"
