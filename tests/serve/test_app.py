"""The in-process daemon: routes, concurrency, per-request budgets, chaos.

Drives :class:`ServeApp.handle` directly (no sockets) — the HTTP shell
is covered separately.  The headline tests: N concurrent clients over
two tenants get exactly the single-threaded pipeline's answers, and an
armed ``serve.request`` / ``serve.cache`` fault surfaces as HTTP 503
carrying the same diagnostics shape as a budget trip.
"""

import asyncio

import pytest

from repro.datalog.database import Database
from repro.datalog.evaluation import evaluate
from repro.datalog.parser import parse_atom, parse_facts, parse_program
from repro.magic import run_pipeline
from repro.magic.transform import match_query_atom
from repro.robustness import Budget, FaultInjector
from repro.robustness.faults import chaos
from repro.serve.app import ServeApp
from repro.serve.wire import rows_payload

ALPHA = {
    "program": "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).",
    "query": "p",
    "facts": "\n".join(f"e({i}, {i + 1})." for i in range(10)),
}
BETA = {
    "program": "q(X, Y) :- f(X, Y).\nq(X, Y) :- f(X, Z), q(Z, Y).",
    "query": "q",
    "facts": "\n".join(f"f({i}, {i + 2})." for i in range(0, 12, 2)),
}


def run(coro):
    return asyncio.run(coro)


async def register(app, name, spec):
    status, payload = await app.handle("PUT", f"/programs/{name}", spec)
    assert status == 200, payload
    return payload


def expected_answers(spec, goal_text):
    program = parse_program(spec["program"], query=spec["query"])
    database = Database(parse_facts(spec["facts"]))
    goal = parse_atom(goal_text)
    report = run_pipeline(program, (), goal, order="semantic-first")
    assert report.program is not None
    result = evaluate(report.program, database)
    return rows_payload(
        frozenset(row for row in result.query_rows() if match_query_atom(row, goal))
    )


class TestRoutes:
    def test_healthz(self):
        app = ServeApp()
        status, payload = run(app.handle("GET", "/healthz"))
        assert status == 200
        assert payload["ok"] is True

    def test_unknown_route_is_400(self):
        app = ServeApp()
        status, payload = run(app.handle("GET", "/nope"))
        assert status == 400
        assert "no such route" in payload["error"]

    def test_wrong_method_is_400(self):
        app = ServeApp()
        status, payload = run(app.handle("POST", "/healthz"))
        assert status == 400
        assert "use GET" in payload["error"]

    def test_unknown_tenant_is_404(self):
        app = ServeApp()
        status, payload = run(
            app.handle("POST", "/programs/ghost/query", {"goal": "p(1, Y)"})
        )
        assert status == 404
        assert "register it first" in payload["error"]

    def test_register_then_query_and_stats(self):
        app = ServeApp()

        async def drive():
            registered = await register(app, "alpha", ALPHA)
            assert registered["mode"] == "fresh"
            assert registered["latest_round"] >= 1
            status, answer = await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(0, Y)"}
            )
            assert status == 200
            status, stats = await app.handle("GET", "/stats")
            assert status == 200
            return answer, stats

        answer, stats = run(drive())
        assert answer["answers"] == expected_answers(ALPHA, "p(0, Y)")
        assert answer["cache_hit"] is False
        assert answer["satisfiable"] is True
        assert stats["tenants"]["alpha"]["queries"] == 1
        assert stats["cache"]["misses"] == 1
        # An unbounded request needs no governor at all.
        assert stats["governors_minted"] == 0

    def test_repeated_shape_hits_the_cache(self):
        app = ServeApp()

        async def drive():
            await register(app, "alpha", ALPHA)
            hits = []
            for constant in (0, 1, 2, 3):
                _, payload = await app.handle(
                    "POST", "/programs/alpha/query", {"goal": f"p({constant}, Y)"}
                )
                hits.append(payload["cache_hit"])
                assert payload["answers"] == expected_answers(ALPHA, f"p({constant}, Y)")
            return hits

        assert run(drive()) == [False, True, True, True]

    def test_goal_must_be_idb(self):
        app = ServeApp()

        async def drive():
            await register(app, "alpha", ALPHA)
            return await app.handle(
                "POST", "/programs/alpha/query", {"goal": "e(1, Y)"}
            )

        status, payload = run(drive())
        assert status == 400
        assert "IDB" in payload["error"]

    def test_materialized_mode_answers_from_resident_fixpoint(self):
        app = ServeApp()

        async def drive():
            await register(app, "alpha", ALPHA)
            return await app.handle(
                "POST",
                "/programs/alpha/query",
                {"goal": "p(0, Y)", "mode": "materialized"},
            )

        status, payload = run(drive())
        assert status == 200
        assert payload["mode"] == "materialized"
        assert payload["materialized_mode"] == "fresh"
        assert payload["answers"] == expected_answers(ALPHA, "p(0, Y)")

    def test_ingest_refreshes_answers(self):
        app = ServeApp()

        async def drive():
            await register(app, "alpha", ALPHA)
            _, before = await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(0, Y)"}
            )
            status, ingested = await app.handle(
                "POST", "/programs/alpha/ingest", {"facts": "e(10, 11)."}
            )
            assert status == 200
            _, after = await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(0, Y)"}
            )
            return before, ingested, after

        before, ingested, after = run(drive())
        assert ingested["ingested"] == 1
        assert ingested["mode"] in ("incremental", "recompute")
        assert [0, 11] in after["answers"]
        assert len(after["answers"]) == len(before["answers"]) + 1
        # The artifact cache survives the ingest: keys are data-free.
        assert after["cache_hit"] is True

    def test_inspect_reports_tenant_summary(self):
        app = ServeApp()

        async def drive():
            await register(app, "alpha", ALPHA)
            return await app.handle("GET", "/programs/alpha")

        status, payload = run(drive())
        assert status == 200
        assert payload["tenant"] == "alpha"
        assert payload["query"] == "p"
        assert payload["edb_facts"] == 10
        assert payload["latest_round"] >= 1


class TestWorkers:
    def test_register_with_workers_materializes_sharded(self):
        app = ServeApp()

        async def drive():
            await register(app, "alpha", {**ALPHA, "workers": 2})
            status, info = await app.handle("GET", "/programs/alpha")
            assert status == 200
            status, answer = await app.handle(
                "POST", "/programs/alpha/query",
                {"goal": "p(0, Y)", "mode": "materialized"},
            )
            assert status == 200
            return info, answer

        info, answer = run(drive())
        assert info["workers"] == 2
        assert answer["answers"] == expected_answers(ALPHA, "p(0, Y)")

    def test_non_positive_workers_is_400(self):
        app = ServeApp()
        status, payload = run(
            app.handle("PUT", "/programs/alpha", {**ALPHA, "workers": 0})
        )
        assert status == 400
        assert "positive integer" in payload["error"]

    def test_workers_with_interpreted_engine_is_400(self):
        app = ServeApp()
        status, payload = run(
            app.handle(
                "PUT", "/programs/alpha",
                {**ALPHA, "workers": 2, "engine": "interpreted"},
            )
        )
        assert status == 400
        assert "slot engine" in payload["error"]

    def test_daemon_default_applies_only_where_sharding_is_legal(self):
        app = ServeApp(workers=2)

        async def drive():
            await register(app, "alpha", ALPHA)
            _, sharded = await app.handle("GET", "/programs/alpha")
            # An interpreted tenant must NOT inherit the daemon default
            # (it would be rejected as a usage error if it did).
            await register(app, "beta", {**BETA, "engine": "interpreted"})
            _, sequential = await app.handle("GET", "/programs/beta")
            return sharded, sequential

        sharded, sequential = run(drive())
        assert sharded["workers"] == 2
        assert sequential["workers"] is None


class TestBudgets:
    def test_request_budget_trip_is_503_with_partial_diagnostics(self):
        app = ServeApp()

        async def drive():
            await register(app, "alpha", ALPHA)
            return await app.handle(
                "POST",
                "/programs/alpha/query",
                {"goal": "p(0, Y)", "max_facts": 1},
            )

        status, payload = run(drive())
        assert status == 503
        assert payload["aborted"] is True
        assert payload["limit"] == "max_facts"
        assert payload["partial"]["facts_derived"] >= 1
        assert app.aborted == 1
        assert app.governors.minted == 1

    def test_server_ceiling_binds_unlimited_requests(self):
        app = ServeApp(defaults=Budget(max_facts=1))

        async def drive():
            await register(app, "alpha", ALPHA)
            return await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(0, Y)"}
            )

        status, payload = run(drive())
        assert status == 503
        assert payload["limit"] == "max_facts"

    def test_aborted_request_does_not_poison_the_next(self):
        app = ServeApp()

        async def drive():
            await register(app, "alpha", ALPHA)
            first = await app.handle(
                "POST",
                "/programs/alpha/query",
                {"goal": "p(0, Y)", "max_facts": 1},
            )
            second = await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(0, Y)"}
            )
            return first, second

        (first_status, _), (second_status, second_payload) = run(drive())
        assert first_status == 503
        assert second_status == 200
        assert second_payload["answers"] == expected_answers(ALPHA, "p(0, Y)")


class TestChaos:
    def test_armed_serve_request_fault_is_503(self):
        app = ServeApp()
        injector = FaultInjector().arm("serve.request", at=2)

        async def drive():
            with chaos(injector):
                first = await register(app, "alpha", ALPHA)
                second = await app.handle(
                    "POST", "/programs/alpha/query", {"goal": "p(0, Y)"}
                )
            return first, second

        async def wrapped():
            # register() asserts 200; the fault fires on the 2nd request.
            return await drive()

        first, (status, payload) = run(wrapped())
        assert first["mode"] == "fresh"
        assert status == 503
        assert payload["aborted"] is True
        assert "injected fault" in payload["error"]
        assert injector.fired == [("serve.request", 2)]

    def test_armed_serve_cache_fault_is_503_and_recoverable(self):
        app = ServeApp()
        injector = FaultInjector().arm("serve.cache", at=1)

        async def drive():
            await register(app, "alpha", ALPHA)
            with chaos(injector):
                faulted = await app.handle(
                    "POST", "/programs/alpha/query", {"goal": "p(0, Y)"}
                )
            healthy = await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(0, Y)"}
            )
            return faulted, healthy

        (status, payload), (after_status, after_payload) = run(drive())
        assert status == 503
        assert payload["aborted"] is True
        assert after_status == 200
        assert after_payload["answers"] == expected_answers(ALPHA, "p(0, Y)")


class TestConcurrency:
    @pytest.mark.parametrize("clients", [8])
    def test_concurrent_clients_get_single_threaded_answers(self, clients):
        """N async clients over two tenants; every response equals the
        single-threaded pipeline's answers for that goal."""
        app = ServeApp()
        goals = {
            "alpha": ["p(0, Y)", "p(1, Y)", "p(2, Y)"],
            "beta": ["q(0, Y)", "q(2, Y)", "q(4, Y)"],
        }
        expected = {
            (tenant, goal): expected_answers(spec, goal)
            for tenant, spec in (("alpha", ALPHA), ("beta", BETA))
            for goal in goals[tenant]
        }

        async def client(index):
            plan = sorted(expected)
            responses = []
            for step in range(6):
                tenant, goal = plan[(index + step) % len(plan)]
                status, payload = await app.handle(
                    "POST", f"/programs/{tenant}/query", {"goal": goal}
                )
                assert status == 200, payload
                responses.append((tenant, goal, payload["answers"]))
            return responses

        async def drive():
            await register(app, "alpha", ALPHA)
            await register(app, "beta", BETA)
            return await asyncio.gather(*(client(i) for i in range(clients)))

        for responses in run(drive()):
            for tenant, goal, answers in responses:
                assert answers == expected[(tenant, goal)]

    def test_concurrent_queries_and_ingest_stay_consistent(self):
        """Writers exclude readers: a query never sees a half-applied
        ingest — every response matches the pipeline over either the
        old or the new EDB."""
        app = ServeApp()
        before = expected_answers(ALPHA, "p(0, Y)")
        extended = dict(ALPHA, facts=ALPHA["facts"] + "\ne(10, 11).")
        after = expected_answers(extended, "p(0, Y)")

        async def reader(index):
            seen = []
            for _ in range(4):
                status, payload = await app.handle(
                    "POST", "/programs/alpha/query", {"goal": "p(0, Y)"}
                )
                assert status == 200, payload
                seen.append(payload["answers"])
            return seen

        async def writer():
            status, payload = await app.handle(
                "POST", "/programs/alpha/ingest", {"facts": "e(10, 11)."}
            )
            assert status == 200, payload

        async def drive():
            await register(app, "alpha", ALPHA)
            results = await asyncio.gather(
                reader(0), reader(1), reader(2), writer(), reader(3)
            )
            return [r for r in results if r is not None]

        for seen in run(drive()):
            for answers in seen:
                assert answers in (before, after)
