"""Serving-layer durability: journal replay on restart, lag reporting.

The registry materializes tenants via ``Session.recover``, so a daemon
killed after acknowledging an ingest but before its covering checkpoint
landed must come back serving that ingest — replayed from the tenant's
write-ahead journal.  ``/healthz`` and ``/stats`` surface the fleet's
journal lag (acked-but-uncovered records a kill right now would
replay) and the replay counter; a journal that cannot ack maps to a
retryable HTTP 503.
"""

import asyncio

from repro.datalog.database import Database
from repro.datalog.parser import parse_facts, parse_program
from repro.persist import FlakyStore, RetryPolicy, Session
from repro.persist.journal import FlakyJournal, IngestJournal
from repro.robustness import FaultInjector

SPEC = {
    "program": "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).",
    "query": "p",
    "facts": "\n".join(f"e({i}, {i + 1})." for i in range(8)),
}


def drive(app, *requests):
    async def run():
        responses = []
        for method, path, body in requests:
            responses.append(await app.handle(method, path, body))
        return responses

    return asyncio.run(run())


def _make_app(tmp_path):
    from repro.serve.app import ServeApp

    return ServeApp(persist_root=tmp_path)


def _orphan_ingest(tmp_path, name, rows):
    """Leave acked-but-uncovered records in a tenant's journal.

    Simulates the crash window: a store-less session shares the
    tenant's journal and acknowledges an ingest, but no checkpoint ever
    covers it — exactly the state a SIGKILL between the journal fsync
    and the checkpoint save leaves behind.
    """
    program = parse_program(SPEC["program"], query=SPEC["query"])
    database = Database(parse_facts(SPEC["facts"]))
    writer = Session(
        program,
        database,
        journal=IngestJournal(tmp_path / name / "journal"),
    )
    writer.ingest(rows)


def test_restart_replays_uncovered_journal_records(tmp_path):
    first = _make_app(tmp_path)
    ((status, registered),) = drive(first, ("PUT", "/programs/jr", SPEC))
    assert status == 200 and registered["mode"] == "fresh"
    # The daemon dies between an ingest's ack and its checkpoint.
    _orphan_ingest(tmp_path, "jr", [("e", (8, 9))])

    second = _make_app(tmp_path)
    (_, reregistered), (_, answer), (_, stats) = drive(
        second,
        ("PUT", "/programs/jr", SPEC),
        ("POST", "/programs/jr/query", {"goal": "p(0, Y)", "mode": "materialized"}),
        ("GET", "/stats", None),
    )
    assert reregistered["mode"] == "recovered"
    # The replayed ingest is part of the answers — no acked write lost.
    assert [0, 9] in answer["answers"]
    assert stats["journal"]["replayed"] >= 1
    assert stats["tenants"]["jr"]["journal"]["replayed"] >= 1


def test_healthz_and_stats_expose_journal_lag(tmp_path):
    app = _make_app(tmp_path)
    drive(
        app,
        ("PUT", "/programs/jr", SPEC),
        ("POST", "/programs/jr/ingest", {"facts": "e(8, 9)."}),
    )
    (status, health), (_, stats) = drive(
        app, ("GET", "/healthz", None), ("GET", "/stats", None)
    )
    assert status == 200
    # The ingest's checkpoint landed, so its journal record is compacted
    # away: zero lag, nothing a kill right now would need to replay.
    assert health["journal"] == {"lag": 0, "replayed": 0}
    assert stats["journal"] == {"lag": 0, "replayed": 0}
    tenant = stats["tenants"]["jr"]["journal"]
    assert tenant["lag"] == 0
    assert tenant["last_seq"] >= 1  # the record existed before compaction


def test_healthz_reports_positive_lag_when_checkpoints_fail(tmp_path):
    """An acked ingest whose checkpoint save keeps failing stays in the
    journal: the daemon answers 200 (durability is the fsync, not the
    checkpoint) but ``/healthz`` shows the record as replay lag."""
    app = _make_app(tmp_path)
    drive(app, ("PUT", "/programs/jr", SPEC))
    tenant = app.registry.get("jr")
    injector = FaultInjector().arm_random("checkpoint.save", rate=1.0)
    tenant.session.store = FlakyStore(tenant.session.store, injector)
    tenant.session.retry = RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0)
    (status, _), (_, health) = drive(
        app,
        ("POST", "/programs/jr/ingest", {"facts": "e(8, 9)."}),
        ("GET", "/healthz", None),
    )
    assert status == 200  # acked: the record is fsynced in the journal
    assert health["journal"]["lag"] >= 1


def test_journal_unavailable_ingest_is_retryable_503(tmp_path):
    app = _make_app(tmp_path)
    drive(app, ("PUT", "/programs/jr", SPEC))
    tenant = app.registry.get("jr")
    injector = FaultInjector().arm_random("journal.append", rate=1.0)
    healthy_journal = tenant.session.journal
    tenant.session.journal = FlakyJournal(healthy_journal, injector)
    tenant.session.retry = RetryPolicy(attempts=2, base_delay=0.0, max_delay=0.0)
    (status, payload), (_, answer) = drive(
        app,
        ("POST", "/programs/jr/ingest", {"facts": "e(8, 9)."}),
        ("POST", "/programs/jr/query", {"goal": "p(0, Y)", "mode": "materialized"}),
    )
    assert status == 503
    assert payload["retryable"] is True
    # The refused ingest mutated nothing: the tenant answers without it.
    assert [0, 9] not in answer["answers"]
    # Once the journal heals, the same ingest is accepted.
    tenant.session.journal = healthy_journal
    (status, accepted), (_, after) = drive(
        app,
        ("POST", "/programs/jr/ingest", {"facts": "e(8, 9)."}),
        ("POST", "/programs/jr/query", {"goal": "p(0, Y)", "mode": "materialized"}),
    )
    assert status == 200, accepted
    assert [0, 9] in after["answers"]
