"""Seed-swap specialization: cached artifacts answer like fresh runs.

The load-bearing invariant of the serving layer: a pipeline artifact
is compiled once per (program shape, order, sips, predicate,
adornment) and re-seeded per request — for every cacheable order the
specialized program answers each goal exactly like a fresh
``run_pipeline`` over the same goal.  ``magic-first`` is the
counterexample (the semantic rewrite sees the seed constants) and must
bypass the cache.
"""

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.evaluation import evaluate
from repro.datalog.terms import Constant, Variable
from repro.magic import run_pipeline
from repro.magic.pipeline import (
    CACHEABLE_ORDERS,
    PIPELINE_ORDERS,
    artifact_key,
    compile_artifact,
    specialize_pipeline,
)
from repro.magic.transform import match_query_atom
from repro.observability import RingBufferSink
from repro.observability.trace import tracing
from repro.serve.cache import ArtifactCache
from repro.workloads.generators import ab_database
from repro.workloads.programs import ab_transitive_closure


@pytest.fixture()
def workload():
    program, constraints = ab_transitive_closure()
    database = ab_database(num_b=8, num_a=8, branching=2, seed=0)
    return program, constraints, database


def goal(constant, predicate="p"):
    return Atom(predicate, (Constant(constant), Variable("Y")))


def answers(report, database, query_atom):
    if report.program is None:
        return frozenset()
    result = evaluate(report.program, database.copy())
    return frozenset(
        row for row in result.query_rows() if match_query_atom(row, query_atom)
    )


def test_cacheable_orders_excludes_magic_first():
    assert "magic-first" not in CACHEABLE_ORDERS
    assert set(CACHEABLE_ORDERS) < set(PIPELINE_ORDERS)


def test_compile_artifact_rejects_magic_first(workload):
    program, constraints, _ = workload
    with pytest.raises(ValueError, match="magic-first"):
        compile_artifact(program, constraints, goal(0), order="magic-first")


def test_specialize_rejects_shape_mismatch(workload):
    program, constraints, _ = workload
    artifact = compile_artifact(program, constraints, goal(0), order="semantic-first")
    with pytest.raises(ValueError):
        artifact.specialize(goal(0, predicate="q"))
    with pytest.raises(ValueError):  # bb adornment, artifact is bf
        artifact.specialize(Atom("p", (Constant(0), Constant(1))))


@pytest.mark.parametrize("order", CACHEABLE_ORDERS)
def test_cached_artifact_answers_like_fresh_pipeline(workload, order):
    program, constraints, database = workload
    cache = ArtifactCache()
    for constant in (0, 1, 2):
        query_atom = goal(constant)
        cached, hit = specialize_pipeline(
            program, constraints, query_atom, order=order, cache=cache
        )
        fresh = run_pipeline(program, constraints, query_atom, order=order)
        assert hit is (constant > 0)
        assert answers(cached, database, query_atom) == answers(
            fresh, database, query_atom
        )
    assert len(cache) == 1  # one artifact served all three constants


def test_magic_first_bypasses_the_cache(workload):
    program, constraints, database = workload
    cache = ArtifactCache()
    sink = RingBufferSink()
    with tracing(sink):
        report, hit = specialize_pipeline(
            program, constraints, goal(0), order="magic-first", cache=cache
        )
    assert hit is False
    assert len(cache) == 0
    fresh = run_pipeline(program, constraints, goal(0), order="magic-first")
    assert answers(report, database, goal(0)) == answers(fresh, database, goal(0))
    events = [e for e in sink if e.kind == "event" and e.name == "pipeline.cache"]
    assert events and events[0].attrs["cacheable"] is False


def test_cache_site_emits_hit_and_miss_trace_events(workload):
    program, constraints, _ = workload
    cache = ArtifactCache()
    sink = RingBufferSink()
    with tracing(sink):
        specialize_pipeline(
            program, constraints, goal(0), cache=cache, cache_site="serve.cache"
        )
        specialize_pipeline(
            program, constraints, goal(1), cache=cache, cache_site="serve.cache"
        )
    events = [e for e in sink if e.kind == "event" and e.name == "serve.cache"]
    assert [e.attrs["hit"] for e in events] == [False, True]
    assert all(e.attrs["cacheable"] for e in events)


def test_artifact_key_is_data_independent(workload):
    """The key hashes program shape — ingesting EDB facts never
    invalidates a compiled artifact."""
    program, constraints, _ = workload
    key_before = artifact_key(program, constraints, goal(0), order="semantic-first")
    # Same program, any database state: the key has no database input
    # at all, and differing constants map to the same key (seed swap).
    assert key_before == artifact_key(
        program, constraints, goal(7), order="semantic-first"
    )
    assert key_before != artifact_key(
        program, constraints, goal(0), order="magic-only"
    )
    assert key_before != artifact_key(
        program,
        constraints,
        Atom("p", (Constant(0), Constant(1))),
        order="semantic-first",
    )


def test_unsatisfiable_artifact_is_cached(workload):
    """A constraint-refuted shape caches as unsatisfiable too."""
    from repro.datalog.parser import parse_constraints, parse_program

    program = parse_program(
        "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).", query="p"
    )
    constraints = tuple(parse_constraints(":- e(X, Y)."))
    cache = ArtifactCache()
    first, hit_first = specialize_pipeline(
        program, constraints, goal(0), cache=cache
    )
    second, hit_second = specialize_pipeline(
        program, constraints, goal(1), cache=cache
    )
    assert (hit_first, hit_second) == (False, True)
    assert first.program is None and second.program is None
