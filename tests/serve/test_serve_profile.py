"""Per-tenant profiler lines and the shared digest helpers."""

import asyncio

from repro.bench import _fixpoint_digest
from repro.digest import fixpoint_digest, program_digest, workload_digest
from repro.observability import RingBufferSink, build_profile
from repro.observability.trace import tracing
from repro.serve.app import ServeApp

SPEC = {
    "program": "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).",
    "query": "p",
    "facts": "\n".join(f"e({i}, {i + 1})." for i in range(8)),
}


def _drive_traced():
    sink = RingBufferSink()
    app = ServeApp()

    async def run():
        await app.handle("PUT", "/programs/t1", SPEC)
        await app.handle("POST", "/programs/t1/query", {"goal": "p(0, Y)"})
        await app.handle("POST", "/programs/t1/query", {"goal": "p(1, Y)"})
        await app.handle(
            "POST", "/programs/t1/query", {"goal": "p(0, Y)", "max_facts": 1}
        )
        await app.handle("POST", "/programs/t1/ingest", {"facts": "e(8, 9)."})

    with tracing(sink):
        asyncio.run(run())
    return build_profile(sink)


def test_profile_aggregates_per_tenant_lines():
    profile = _drive_traced()
    tenant = profile.tenants["t1"]
    assert tenant.requests == 5
    assert tenant.queries == 3
    assert tenant.ingests == 1
    assert tenant.errors == 1
    assert tenant.aborted == 1
    assert profile.serve_cache_misses == 1
    assert profile.serve_cache_hits >= 1


def test_profile_render_has_serving_section():
    text = _drive_traced().render()
    assert "artifact cache hits" in text
    assert "tenant" in text
    assert "t1" in text


class TestSharedDigests:
    """Satellite: one digest implementation across bench/persist/serve."""

    def test_bench_alias_is_the_shared_function(self):
        assert _fixpoint_digest is fixpoint_digest

    def test_program_digest_ignores_data(self):
        from repro.datalog.parser import parse_program

        program = parse_program(SPEC["program"], query="p")
        assert program_digest(program) == workload_digest(program, None, ())

    def test_workload_digest_covers_data(self):
        from repro.datalog.database import Database
        from repro.datalog.parser import parse_facts, parse_program

        program = parse_program(SPEC["program"], query="p")
        small = Database(parse_facts("e(1, 2)."))
        large = Database(parse_facts("e(1, 2).\ne(2, 3)."))
        assert workload_digest(program, small) != workload_digest(program, large)

    def test_optimization_report_cache_key_is_stable(self):
        from repro.core.rewrite import optimize
        from repro.datalog.parser import parse_constraints, parse_program
        from repro.workloads.programs import ab_transitive_closure

        program, constraints = ab_transitive_closure()
        first = optimize(program, constraints).cache_key()
        second = optimize(program, constraints).cache_key()
        assert first == second
        other = optimize(
            parse_program(SPEC["program"], query="p"),
            tuple(parse_constraints(":- e(X, X).")),
        ).cache_key()
        assert other != first
