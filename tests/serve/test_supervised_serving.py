"""The serving layer's view of fleet supervision: ``/healthz``
readiness with degradation state, 429 admission control for degraded
tenants, recovery counters in ``/stats``, and the client's shared
retry policy.
"""

import asyncio

import pytest

from repro.persist.store import RetryPolicy
from repro.robustness import FaultInjector
from repro.robustness.faults import chaos
from repro.serve.app import ServeApp
from repro.serve.client import ServeClient

ALPHA = {
    "program": "p(X, Y) :- e(X, Y).\np(X, Y) :- e(X, Z), p(Z, Y).",
    "query": "p",
    "facts": "\n".join(f"e({i}, {i + 1})." for i in range(10)),
}


def run(coro):
    return asyncio.run(coro)


async def register(app, name, spec):
    status, payload = await app.handle("PUT", f"/programs/{name}", spec)
    assert status == 200, payload
    return payload


# ----------------------------------------------------------------------
# /healthz readiness


class TestHealthz:
    def test_shape_with_no_tenants(self):
        app = ServeApp()
        status, payload = run(app.handle("GET", "/healthz"))
        assert status == 200
        assert payload["ok"] is True
        assert payload["ready"] is True
        assert payload["tenants"] == 0
        assert payload["degraded_tenants"] == []
        assert payload["recovery"] == {
            "worker_restarts": 0,
            "shards_redispatched": 0,
            "degradations": 0,
        }

    def test_degraded_tenant_is_named(self):
        async def scenario():
            app = ServeApp()
            await register(app, "alpha", ALPHA)
            tenant = app.registry.get("alpha")
            tenant.degraded = True
            tenant.worker_restarts = 2
            tenant.degradations = 1
            status, payload = await app.handle("GET", "/healthz")
            assert status == 200
            assert payload["ok"] is True  # degraded still serves
            assert payload["degraded_tenants"] == ["alpha"]
            assert payload["recovery"]["worker_restarts"] == 2
            assert payload["recovery"]["degradations"] == 1

        run(scenario())


# ----------------------------------------------------------------------
# Admission control: degraded tenants shed load with 429


class TestAdmissionControl:
    def test_degraded_tenant_sheds_with_429(self):
        async def scenario():
            app = ServeApp(degraded_inflight_limit=0)
            await register(app, "alpha", ALPHA)
            tenant = app.registry.get("alpha")
            tenant.degraded = True
            tenant.worker_restarts = 3
            tenant.shards_redispatched = 3
            tenant.degradations = 2
            status, payload = await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(1, Y)"}
            )
            assert status == 429
            assert payload["degraded"] is True
            assert payload["shed"] is True
            assert "degraded" in payload["error"]
            # Partial diagnostics ride along: the recovery counters and
            # the materialization's fallback chain.
            assert payload["recovery"]["worker_restarts"] == 3
            assert payload["recovery"]["degradations"] == 2
            assert "fallbacks" in payload
            assert "latest_round" in payload
            assert app.shed == 1
            assert tenant.shed == 1

        run(scenario())

    def test_healthy_tenant_is_admitted(self):
        async def scenario():
            app = ServeApp(degraded_inflight_limit=0)
            await register(app, "alpha", ALPHA)
            status, payload = await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(1, Y)"}
            )
            assert status == 200, payload
            assert payload["answers"]
            assert app.shed == 0

        run(scenario())

    def test_recovered_tenant_is_admitted_again(self):
        async def scenario():
            app = ServeApp(degraded_inflight_limit=0)
            await register(app, "alpha", ALPHA)
            tenant = app.registry.get("alpha")
            tenant.degraded = True
            status, _ = await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(1, Y)"}
            )
            assert status == 429
            # A clean ingest (no degradations) clears the flag.
            status, payload = await app.handle(
                "POST", "/programs/alpha/ingest", {"facts": "e(10, 11)."}
            )
            assert status == 200, payload
            assert tenant.degraded is False
            status, payload = await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(1, Y)"}
            )
            assert status == 200, payload

        run(scenario())

    def test_inflight_tracking_returns_to_zero(self):
        async def scenario():
            app = ServeApp()
            await register(app, "alpha", ALPHA)
            tenant = app.registry.get("alpha")
            await app.handle("POST", "/programs/alpha/query", {"goal": "p(1, Y)"})
            assert tenant.inflight == 0

        run(scenario())


# ----------------------------------------------------------------------
# /stats recovery counters


class TestStatsRecovery:
    def test_stats_totals_and_per_tenant_fields(self):
        async def scenario():
            app = ServeApp(degraded_inflight_limit=0)
            await register(app, "alpha", ALPHA)
            tenant = app.registry.get("alpha")
            tenant.degraded = True
            tenant.worker_restarts = 1
            tenant.shards_redispatched = 2
            tenant.degradations = 1
            await app.handle(
                "POST", "/programs/alpha/query", {"goal": "p(1, Y)"}
            )  # shed
            status, payload = await app.handle("GET", "/stats")
            assert status == 200
            assert payload["shed"] == 1
            assert payload["recovery"] == {
                "worker_restarts": 1,
                "shards_redispatched": 2,
                "degradations": 1,
            }
            info = payload["tenants"]["alpha"]
            assert info["degraded"] is True
            assert info["shed"] == 1
            assert info["recovery"]["shards_redispatched"] == 2

        run(scenario())


# ----------------------------------------------------------------------
# End-to-end: a register whose fleet is killed into the ladder


class TestDegradedRegistration:
    def test_chaos_killed_fleet_registers_degraded(self):
        async def scenario():
            app = ServeApp()
            injector = FaultInjector().arm("shard.dispatch", times=500)
            with chaos(injector):
                payload = await register(
                    app, "alpha", {**ALPHA, "workers": 2, "storage": "columnar"}
                )
            # The answer materialized anyway (degradation, not failure)
            # and the ladder rungs are visible in the register response.
            assert payload["idb_facts"] > 0
            assert any("sequential-columnar" in f for f in payload["fallbacks"])
            tenant = app.registry.get("alpha")
            assert tenant.degraded is True
            assert tenant.degradations >= 1
            status, health = await app.handle("GET", "/healthz")
            assert health["degraded_tenants"] == ["alpha"]
            assert health["recovery"]["degradations"] >= 1
            # Queries still answer correctly below the inflight limit.
            status, answer = await app.handle(
                "POST",
                "/programs/alpha/query",
                {"goal": "p(1, Y)", "mode": "materialized"},
            )
            assert status == 200, answer
            assert answer["answers"]

        run(scenario())


# ----------------------------------------------------------------------
# The client's shared RetryPolicy (satellite)


class TestClientRetry:
    def _flaky(self, failures, response_payload=b'{"ok": true}'):
        """A client whose transport fails ``failures`` times, then works."""
        client = ServeClient(retry=RetryPolicy(base_delay=0.0, jitter=0.0))
        state = {"left": failures}

        class _Response:
            status = 200

        def round_trip(method, path, body):
            if state["left"] > 0:
                state["left"] -= 1
                raise ConnectionResetError("keep-alive dropped")
            return _Response(), response_payload

        client._round_trip = round_trip
        client.close = lambda: None
        return client

    def test_retries_under_policy_and_surfaces_count(self):
        client = self._flaky(2)
        payload = client.request("GET", "/healthz")
        assert payload["ok"] is True
        assert payload["client_retries"] == 2
        assert client.last_retries == 2
        assert client.retries_total == 2

    def test_clean_request_has_no_retry_key(self):
        client = self._flaky(0)
        payload = client.request("GET", "/healthz")
        assert "client_retries" not in payload
        assert client.last_retries == 0

    def test_exhausted_policy_reraises(self):
        client = self._flaky(10)  # default policy allows 3 retries
        with pytest.raises(ConnectionResetError):
            client.request("GET", "/healthz")
        assert client.retries_total == 3

    def test_retry_counts_accumulate_across_requests(self):
        client = self._flaky(1)
        client.request("GET", "/healthz")
        assert client.retries_total == 1
        # Second request is clean; last_retries resets, total sticks.
        payload = client.request("GET", "/healthz")
        assert client.last_retries == 0
        assert client.retries_total == 1
        assert "client_retries" not in payload
