"""Report rendering: tables, trace views, deterministic regeneration."""

import textwrap

import pytest

from repro.datalog.evaluation import evaluate
from repro.observability import (
    Experiment,
    JsonlSink,
    RingBufferSink,
    md_table,
    read_jsonl,
    regenerate_experiments,
    render_trace,
    trace_summary,
    tracing,
    work_ratio_table,
)
from repro.observability.report import (
    GENERATED_HEADER,
    load_experiments,
    render_experiments,
)
from repro.workloads.generators import good_path_bidirectional_database
from repro.workloads.programs import good_path


def test_md_table_formats_ints_and_floats():
    table = md_table(["a", "b"], [[1234, 0.5], ["x", float("inf")]])
    assert "| 1,234 | 0.50 |" in table
    assert "| x | inf |" in table
    assert table.splitlines()[1] == "|---|---|"


def test_work_ratio_table_baseline_and_ratios():
    table = work_ratio_table(
        [
            ("original", {"rule_firings": 10, "probes": 100, "rows_scanned": 4,
                          "facts_derived": 10, "iterations": 2}),
            ("optimized", {"rule_firings": 5, "probes": 50, "rows_scanned": 2,
                           "facts_derived": 5, "iterations": 2}),
        ]
    )
    lines = table.splitlines()
    assert lines[2].endswith("| — |")
    assert lines[3].endswith("| 0.50× |")


def test_work_ratio_table_zero_baseline_guard():
    table = work_ratio_table(
        [
            ("empty", {"facts_derived": 0}),
            ("busy", {"facts_derived": 7}),
        ],
        counters=("facts_derived",),
    )
    # 7 / 0 must render as inf, not raise.
    assert "inf×" in table


def test_work_ratio_table_requires_variants():
    with pytest.raises(ValueError):
        work_ratio_table([])


def test_render_trace_and_summary_round_trip_through_jsonl(tmp_path):
    program, _ = good_path()
    database = good_path_bidirectional_database(num_chains=2, chain_length=6, seed=0)
    path = tmp_path / "trace.jsonl"
    ring = RingBufferSink()
    jsonl = JsonlSink(path)
    with tracing(ring, jsonl):
        evaluate(program, database)
    jsonl.close()

    restored = read_jsonl(path)
    # The renderers see identical traces whether live or reloaded.
    assert render_trace(restored) == render_trace(ring)
    assert trace_summary(restored) == trace_summary(ring)
    assert "evaluate" in render_trace(restored)


def test_render_trace_limit():
    ring = RingBufferSink()
    with tracing(ring) as tracer:
        for i in range(5):
            tracer.event("e", i=i)
    text = render_trace(ring, limit=2)
    assert "(3 more events)" in text


def _write_synthetic_bench(directory, value):
    directory.joinpath("common.py").write_text(
        "MAGIC = %d\n" % value, encoding="utf-8"
    )
    directory.joinpath("bench_synthetic.py").write_text(
        textwrap.dedent(
            """
            from common import MAGIC
            from repro.observability import Experiment, md_table

            def experiment():
                return Experiment(
                    key="X01",
                    title="synthetic",
                    narrative="A fixed table.",
                    build=lambda: md_table(["k"], [[MAGIC]]),
                )
            """
        ),
        encoding="utf-8",
    )


def test_load_experiments_imports_bench_modules(tmp_path):
    _write_synthetic_bench(tmp_path, 42)
    experiments = load_experiments(tmp_path)
    assert [e.key for e in experiments] == ["X01"]
    assert "| 42 |" in experiments[0].build()


def test_regenerate_is_byte_stable_and_check_never_writes(tmp_path):
    _write_synthetic_bench(tmp_path, 7)
    output = tmp_path / "EXPERIMENTS.md"

    stale, content = regenerate_experiments(tmp_path, output, check=False)
    assert stale and output.read_text(encoding="utf-8") == content
    assert content.startswith(GENERATED_HEADER.splitlines()[0])
    assert content.endswith("\n")

    # Second run: byte-identical, nothing to do.
    stale, again = regenerate_experiments(tmp_path, output, check=False)
    assert not stale and again == content

    # Drift is detected, and --check must not repair it.
    output.write_text(content + "edited\n", encoding="utf-8")
    stale, _ = regenerate_experiments(tmp_path, output, check=True)
    assert stale
    assert output.read_text(encoding="utf-8").endswith("edited\n")


def test_render_experiments_sorts_by_key():
    def exp(key):
        return Experiment(key=key, title=key, narrative="n", build=lambda: "")

    text = render_experiments([exp("E10"), exp("E02"), exp("F01")])
    assert text.index("## E02") < text.index("## E10") < text.index("## F01")


def test_committed_experiments_md_contains_generated_sections():
    """The committed report is the generated artifact, not hand prose."""
    from pathlib import Path

    content = Path(__file__).resolve().parents[2].joinpath("EXPERIMENTS.md").read_text(
        encoding="utf-8"
    )
    assert content.startswith("# EXPERIMENTS — paper vs. measured")
    assert "Generated file — do not edit." in content
    for key in ("## E01", "## E11", "## F01", "## S01"):
        assert key in content, key
