"""The tracing backbone: nesting, determinism, sinks, zero overhead."""

import io
import time

from repro.datalog.evaluation import evaluate
from repro.observability import (
    JsonlSink,
    LogSink,
    NULL_TRACER,
    RingBufferSink,
    TraceEvent,
    Tracer,
    get_tracer,
    read_jsonl,
    set_tracer,
    tracing,
)
from repro.workloads.generators import good_path_bidirectional_database
from repro.workloads.programs import good_path


def _fixed_clock(step=1.0):
    ticks = iter(range(10_000))

    def clock():
        return next(ticks) * step

    return clock


def test_span_nesting_ids_depths_and_order():
    sink = RingBufferSink()
    tracer = Tracer([sink], clock=_fixed_clock())
    with tracer.span("outer", phase="a") as outer:
        with tracer.span("inner") as inner:
            inner.set(rows=3)
        tracer.event("tick", n=1)
        outer.set(done=True)

    events = list(sink)
    # Spans emit on close: inner first, then the sibling event, then outer.
    assert [e.name for e in events] == ["inner", "tick", "outer"]
    inner_ev, tick_ev, outer_ev = events
    assert outer_ev.span_id == 1 and outer_ev.parent_id is None and outer_ev.depth == 0
    assert inner_ev.span_id == 2 and inner_ev.parent_id == 1 and inner_ev.depth == 1
    assert tick_ev.kind == "event" and tick_ev.parent_id == 1 and tick_ev.duration == 0.0
    assert inner_ev.attrs == {"rows": 3}
    assert outer_ev.attrs == {"phase": "a", "done": True}
    assert outer_ev.duration > inner_ev.duration > 0


def test_span_ids_are_deterministic_across_runs():
    def run():
        sink = RingBufferSink()
        with tracing(sink):
            program, _ = good_path()
            database = good_path_bidirectional_database(
                num_chains=2, chain_length=6, seed=0
            )
            evaluate(program, database)
        return [
            (e.name, e.kind, e.span_id, e.parent_id, e.depth, e.attrs)
            for e in sink
        ]

    assert run() == run()


def test_disabled_tracer_emits_nothing_and_shares_null_span():
    sink = RingBufferSink()
    tracer = Tracer([sink], enabled=False)
    span = tracer.span("anything", cost="should not matter")
    with span:
        tracer.event("also dropped")
    assert span is tracer.span("other")  # the shared no-op span
    assert span.set(a=1) is span
    assert len(sink) == 0
    assert not NULL_TRACER.enabled


def test_default_tracer_is_disabled_and_instrumentation_is_silent():
    assert get_tracer().enabled is False
    program, _ = good_path()
    database = good_path_bidirectional_database(num_chains=2, chain_length=6, seed=0)
    sink = RingBufferSink()
    # Fresh database copies per run: hash indexes are cached on the
    # Relation objects, so reuse would skew index_builds across runs.
    baseline = evaluate(program, database.copy())
    with tracing(sink):
        traced = evaluate(program, database.copy())
    untraced_again = evaluate(program, database.copy())
    # Tracing never changes semantics or work accounting.  Wall time is
    # never identical between runs, so it is excluded from the comparison.
    def counters(result):
        payload = result.stats.as_dict()
        payload.pop("wall_time_seconds")
        return payload

    assert traced.query_rows() == baseline.query_rows()
    assert counters(traced) == counters(baseline)
    assert counters(untraced_again) == counters(baseline)
    assert len(sink) > 0


def test_tracing_restores_previous_tracer():
    previous = get_tracer()
    with tracing() as tracer:
        assert get_tracer() is tracer and tracer.enabled
        inner = Tracer(enabled=False)
        old = set_tracer(inner)
        assert old is tracer and get_tracer() is inner
        set_tracer(old)
    assert get_tracer() is previous


def test_disabled_tracer_overhead_is_bounded():
    """The acceptance bound: the instrumentation a disabled tracer skips
    costs at most 5% of the bench_example31 workload runtime.

    Measured deterministically-ish: count the events an enabled run
    emits, then time that many disabled-guard + disabled-span calls and
    compare against the workload's own runtime (best of 3 each).
    """
    program, _ = good_path()
    database = good_path_bidirectional_database(num_chains=4, chain_length=40, seed=0)

    workload = min(
        _timed(lambda: evaluate(program, database)) for _ in range(3)
    )

    sink = RingBufferSink()
    with tracing(sink):
        evaluate(program, database)
    sites = len(sink)
    assert sites > 50  # the workload is genuinely instrumented

    tracer = Tracer(enabled=False)

    def disabled_calls():
        for _ in range(sites):
            if tracer.enabled:  # the hot-path guard evaluation.py uses
                tracer.event("never")
            with tracer.span("never"):
                pass

    overhead = min(_timed(disabled_calls) for _ in range(3))
    assert overhead <= workload * 0.05, (overhead, workload)


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_ring_buffer_capacity_and_clear():
    sink = RingBufferSink(capacity=2)
    tracer = Tracer([sink])
    for i in range(4):
        tracer.event("e", i=i)
    assert [e.attrs["i"] for e in sink] == [2, 3]
    sink.clear()
    assert len(sink) == 0


def test_jsonl_round_trip_preserves_events(tmp_path):
    program, _ = good_path()
    database = good_path_bidirectional_database(num_chains=2, chain_length=6, seed=0)
    path = tmp_path / "trace.jsonl"
    ring = RingBufferSink()
    jsonl = JsonlSink(path)
    with tracing(ring, jsonl):
        evaluate(program, database)
    jsonl.close()

    restored = read_jsonl(path)
    assert restored == list(ring)
    # TraceEvent equality is structural (dict-level).
    assert restored[0].as_dict() == list(ring)[0].as_dict()


def test_jsonl_sink_accepts_open_stream():
    stream = io.StringIO()
    sink = JsonlSink(stream)
    tracer = Tracer([sink])
    tracer.event("x", a=1)
    sink.close()  # flushes but must not close a borrowed stream
    assert '"name": "x"' in stream.getvalue()
    assert not stream.closed


def test_log_sink_renders_depth_and_attrs():
    stream = io.StringIO()
    tracer = Tracer([LogSink(stream)], clock=_fixed_clock(0.001))
    with tracer.span("outer"):
        tracer.event("inner", n=2)
    text = stream.getvalue()
    assert "  inner n=2" in text  # depth-1 indent
    assert "outer" in text and "ms]" in text


def test_trace_event_from_dict_round_trip():
    event = TraceEvent(
        name="rule", kind="span", span_id=7, parent_id=3,
        depth=2, start=0.5, duration=0.25, attrs={"firings": 4},
    )
    assert TraceEvent.from_dict(event.as_dict()) == event
