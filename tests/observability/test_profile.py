"""The evaluation profiler: aggregation, top-k, rendering."""

from repro.datalog.evaluation import evaluate
from repro.observability import (
    RingBufferSink,
    build_profile,
    profile_evaluation,
    tracing,
)
from repro.workloads.generators import good_path_bidirectional_database
from repro.workloads.programs import good_path


def _workload():
    program, _ = good_path()
    database = good_path_bidirectional_database(num_chains=2, chain_length=8, seed=0)
    return program, database


def test_profile_totals_match_evaluation_stats():
    program, database = _workload()
    profile, result = profile_evaluation(program, database)
    stats = result.stats
    assert sum(r.firings for r in profile.rules.values()) == stats.rule_firings
    assert sum(r.probes for r in profile.rules.values()) == stats.probes
    assert sum(r.facts_derived for r in profile.rules.values()) == stats.facts_derived
    assert profile.iterations == stats.iterations
    assert profile.sccs >= 1
    assert profile.total_time > 0


def test_profile_answers_unchanged():
    program, database = _workload()
    # Independent copies: hash indexes are cached on the Relation objects,
    # so a shared database would make index_builds differ between runs.
    baseline = evaluate(program, database.copy())
    _, result = profile_evaluation(program, database.copy())
    assert result.query_rows() == baseline.query_rows()
    # Wall time is never identical between runs; every other counter must be.
    profiled = result.stats.as_dict()
    expected = baseline.stats.as_dict()
    profiled.pop("wall_time_seconds")
    expected.pop("wall_time_seconds")
    assert profiled == expected


def test_top_rules_ordering_and_keys():
    program, database = _workload()
    profile, _ = profile_evaluation(program, database)
    by_time = profile.top_rules(10, key="time")
    assert [r.time for r in by_time] == sorted((r.time for r in by_time), reverse=True)
    by_facts = profile.top_rules(2, key="facts_derived")
    assert len(by_facts) == 2
    assert by_facts[0].facts_derived >= by_facts[1].facts_derived


def test_render_contains_rules_and_predicates():
    program, database = _workload()
    profile, _ = profile_evaluation(program, database)
    text = profile.render(top=3)
    assert "rule" in text and "predicate" in text
    assert "path" in text and "goodPath" in text
    assert "hit" in text  # probe hit-rate column


def test_build_profile_from_captured_events_matches_helper():
    program, database = _workload()
    sink = RingBufferSink()
    with tracing(sink):
        evaluate(program, database)
    profile = build_profile(sink)
    helper_profile, _ = profile_evaluation(program, database)
    assert set(profile.rules) == set(helper_profile.rules)
    for name, rule in profile.rules.items():
        other = helper_profile.rules[name]
        assert (rule.firings, rule.probes, rule.facts_derived) == (
            other.firings,
            other.probes,
            other.facts_derived,
        )


def test_naive_strategy_profiles_too():
    program, database = _workload()
    profile, result = profile_evaluation(program, database, strategy="naive")
    assert sum(r.firings for r in profile.rules.values()) == result.stats.rule_firings
    assert profile.iterations == result.stats.iterations
