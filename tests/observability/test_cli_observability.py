"""CLI surface of the observability layer: trace, profile, report, --trace."""

import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.observability import read_jsonl

REPO_ROOT = Path(__file__).resolve().parents[2]
GOOD_PATH = str(REPO_ROOT / "examples" / "good_path.dl")
GOOD_PATH_ICS = str(REPO_ROOT / "examples" / "good_path_ics.dl")
AB_PATHS = str(REPO_ROOT / "examples" / "ab_paths.dl")
AB_ICS = str(REPO_ROOT / "examples" / "ab_paths_ics.dl")


def test_profile_example_prints_hot_rules(capsys):
    assert main(["profile", GOOD_PATH, "--query", "goodPath"]) == 0
    out = capsys.readouterr().out
    assert "evaluation profile:" in out
    assert "rules by time" in out
    assert "path(X, Y) :- step(X, Z), path(Z, Y)." in out
    assert "per-predicate totals" in out
    assert "answers: 2 rows in goodPath" in out


def test_profile_top_and_strategy_flags(capsys):
    assert main(["profile", GOOD_PATH, "--query", "goodPath", "--top", "1",
                 "--strategy", "naive"]) == 0
    out = capsys.readouterr().out
    assert "top 1 rules" in out


def test_trace_renders_rewrite_and_evaluation(capsys):
    assert main(["trace", GOOD_PATH, "--query", "goodPath",
                 "--constraints", GOOD_PATH_ICS]) == 0
    out = capsys.readouterr().out
    assert "optimize query=goodPath" in out
    assert "querytree.build" in out
    assert "evaluate strategy=seminaive" in out


def test_trace_jsonl_round_trips(tmp_path, capsys):
    target = tmp_path / "trace.jsonl"
    assert main(["trace", GOOD_PATH, "--query", "goodPath",
                 "--jsonl", str(target), "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "more events)" in out
    events = read_jsonl(target)
    assert events and any(e.name == "evaluate" for e in events)


def test_run_with_inline_facts_and_trace_flag(capsys):
    assert main(["run", GOOD_PATH, "--query", "goodPath", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "answers (2):" in out
    assert "trace summary:" in out
    assert "evaluate" in out


def test_pipeline_trace_flag_summarizes_stages(capsys):
    assert main(["pipeline", AB_PATHS, "--goal", "p(1, Y)",
                 "--constraints", AB_ICS, "--compare", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "answers match" in out
    assert "trace summary:" in out
    assert "pipeline.stage" in out
    assert "magic.transform" in out


def test_magic_trace_flag(capsys):
    assert main(["magic", AB_PATHS, "--goal", "p(1, Y)", "--compare", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "answers match" in out
    assert "trace summary:" in out


def _write_synthetic_bench(directory):
    directory.joinpath("bench_one.py").write_text(
        textwrap.dedent(
            """
            from repro.observability import Experiment

            def experiment():
                return Experiment(
                    key="X01", title="one", narrative="n", build=lambda: "body"
                )
            """
        ),
        encoding="utf-8",
    )


def test_report_regenerate_and_check_cycle(tmp_path, capsys):
    _write_synthetic_bench(tmp_path)
    output = tmp_path / "EXPERIMENTS.md"
    base = ["report", "--benchmarks", str(tmp_path), "--output", str(output)]

    assert main(base + ["--regenerate"]) == 0
    assert "regenerated" in capsys.readouterr().out
    first = output.read_text(encoding="utf-8")

    # Byte-identical on the second run.
    assert main(base + ["--regenerate"]) == 0
    assert "unchanged" in capsys.readouterr().out
    assert output.read_text(encoding="utf-8") == first

    assert main(base + ["--regenerate", "--check"]) == 0
    assert "up to date" in capsys.readouterr().out

    output.write_text(first + "drift\n", encoding="utf-8")
    assert main(base + ["--regenerate", "--check"]) == 1
    assert "stale" in capsys.readouterr().out
    # --check never repairs the file.
    assert output.read_text(encoding="utf-8").endswith("drift\n")


def test_report_requires_regenerate_flag(capsys):
    assert main(["report"]) == 2
    assert "error:" in capsys.readouterr().err
