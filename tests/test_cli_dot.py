"""CLI --dot flag and machine helper coverage."""

import pytest

from repro.cli import main
from repro.machines.reduction import _state_chain
from repro.datalog.terms import Variable


class TestDotFlag:
    def test_dot_file_written(self, tmp_path, capsys):
        program = tmp_path / "program.dl"
        program.write_text(
            """
            p(X, Y) :- a(X, Y).
            p(X, Y) :- b(X, Y).
            p(X, Y) :- a(X, Z), p(Z, Y).
            p(X, Y) :- b(X, Z), p(Z, Y).
            """
        )
        ics = tmp_path / "ics.dl"
        ics.write_text(":- a(X, Y), b(Y, Z).")
        out = tmp_path / "tree.dot"
        assert main([
            "optimize", str(program), "--constraints", str(ics),
            "--query", "p", "--dot", str(out),
        ]) == 0
        text = out.read_text()
        assert text.startswith("digraph querytree {")
        assert "peripheries=2" in text
        assert "query tree written" in capsys.readouterr().out


class TestStateChain:
    def test_zero_state(self):
        chain = _state_chain(0, Variable("S"), "x")
        assert len(chain) == 1
        assert chain[0].predicate == "zero"
        assert chain[0].args == (Variable("S"),)

    def test_positive_state(self):
        chain = _state_chain(3, Variable("S"), "x")
        # zero(Z), succ(Z, V1), succ(V1, V2), succ(V2, S)
        assert len(chain) == 4
        assert chain[0].predicate == "zero"
        assert all(item.predicate == "succ" for item in chain[1:])
        assert chain[-1].args[1] == Variable("S")

    def test_chain_is_connected(self):
        chain = _state_chain(2, Variable("S"), "k")
        assert chain[1].args[0] == chain[0].args[0]
        assert chain[2].args[0] == chain[1].args[1]
