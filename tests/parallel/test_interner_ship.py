"""Interner hand-off: stable, compact serialization.

The sharded evaluator's correctness rests on master and workers
assigning the *same* code to every value (docs/parallel.md).  The
serialized form is the value table in code order — codes are a pure
function of it — and :meth:`Interner.digest` is the equality the
warm-start protocol checks.  These tests pin that contract across the
three transports the code uses: pickle (fork hand-off), the
``Database.to_dict(include_interner=True)`` snapshot (EDB shipping and
checkpoints), and a real forked :class:`WorkerPool` warm-up.
"""

import pickle

from repro.datalog.database import Database, Interner
from repro.parallel import WorkerPool
from repro.workloads.generators import random_workload


def _sample_interner() -> Interner:
    interner = Interner()
    for value in ("a", "b", 1, 2.5, None, True, "z", 0):
        interner.intern(value)
    # Re-intern everything once so ``hits`` is nonzero.
    for value in ("a", "b", 1, 2.5):
        interner.intern(value)
    return interner


def test_pickle_round_trip_preserves_codes_and_digest():
    original = _sample_interner()
    restored = pickle.loads(pickle.dumps(original))
    assert restored.digest() == original.digest()
    assert restored.codes == original.codes
    assert restored.values == original.values
    # ``hits`` is process-local telemetry and must not travel.
    assert restored.hits == 0


def test_pickle_payload_is_compact_and_independent_of_hits():
    """The pickle carries only the value table: two interners with the
    same values serialize to identical bytes no matter how many lookup
    hits each has seen, and the payload holds no redundant code map."""
    hot = _sample_interner()
    cold = Interner(hot.to_list())
    assert hot.hits > 0 and cold.hits == 0
    assert pickle.dumps(hot) == pickle.dumps(cold)


def test_database_snapshot_round_trip_preserves_code_assignment():
    program, database, _ = random_workload(5, nodes=8, edges=40)
    columnar = database.to_storage("columnar")
    # Derive extra codes past the EDB by interning fresh values.
    columnar.interner.intern(("synthetic", 1))
    restored = Database.from_dict(columnar.to_dict(include_interner=True))
    assert restored.storage == "columnar"
    assert restored.interner.digest() == columnar.interner.digest()
    assert restored.interner.codes == columnar.interner.codes
    # And the restored relations decode to the same rows.
    for predicate in columnar.predicates():
        assert set(restored.relation(predicate).to_rows()) == set(
            columnar.relation(predicate).to_rows()
        )


def test_fork_hand_off_digest_matches_across_processes():
    """WorkerPool warm-up raises WorkerFailure unless every forked
    worker reports back the master's interner digest — constructing a
    pool IS the cross-process digest assertion."""
    program, database, _ = random_workload(0)
    columnar = database.to_storage("columnar")
    with WorkerPool(program, columnar, 2) as pool:
        assert pool.interner_digest == columnar.interner.digest()


def test_equal_digests_imply_equal_codes():
    left = _sample_interner()
    right = Interner(left.to_list())
    assert left.digest() == right.digest()
    for value in left.to_list():
        assert left.code_of(value) == right.code_of(value)
    # Any divergence in the table changes the digest.
    right.intern("extra")
    assert left.digest() != right.digest()
