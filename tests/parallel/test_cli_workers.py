"""The ``--workers`` flag across the CLI surface.

Exit-code contract (shared with the budget flags): 0 success, 1 budget
trip with partial diagnostics on stderr, 2 usage error — a sharded run
must degrade exactly like a sequential one, never with a traceback.
"""

import pytest

from repro.cli import main

PROGRAM = """
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
"""


def _facts(n=40):
    return "\n".join(f"e({i}, {i + 1})." for i in range(n)) + "\n"


@pytest.fixture()
def files(tmp_path):
    paths = {}
    for name, content in {
        "program.dl": PROGRAM,
        "facts.dl": _facts(),
    }.items():
        path = tmp_path / name
        path.write_text(content)
        paths[name] = str(path)
    return paths


class TestRunWorkers:
    def test_sharded_run_matches_sequential_output(self, files, capsys):
        base = [
            "run", files["program.dl"], "--query", "p", "--data", files["facts.dl"],
        ]
        assert main(base) == 0
        sequential = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        sharded = capsys.readouterr().out

        # Answers are identical; only the trailing "work:" line differs,
        # because probes/env-allocations report fleet totals there.
        def answers(text):
            return [line for line in text.splitlines() if not line.startswith("work:")]

        assert answers(sharded) == answers(sequential)

    def test_zero_workers_exits_two(self, files, capsys):
        code = main([
            "run", files["program.dl"], "--query", "p",
            "--data", files["facts.dl"], "--workers", "0",
        ])
        assert code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_workers_with_interpreted_engine_exits_two(self, files, capsys):
        code = main([
            "run", files["program.dl"], "--query", "p",
            "--data", files["facts.dl"], "--workers", "2",
            "--engine", "interpreted",
        ])
        assert code == 2
        assert "slot engine" in capsys.readouterr().err

    def test_fact_budget_trip_exits_one_with_partial(self, files, capsys):
        code = main([
            "run", files["program.dl"], "--query", "p",
            "--data", files["facts.dl"], "--workers", "4", "--max-facts", "5",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "aborted:" in captured.err
        assert "partial results:" in captured.err
        assert "Traceback" not in captured.err

    def test_timeout_trip_exits_one(self, files, capsys):
        # A timeout this small trips during the fleet warm-up; the exit
        # path must still be the clean budget-trip one (docs/parallel.md
        # failure modes), identical to the sequential engine's.
        code = main([
            "run", files["program.dl"], "--query", "p",
            "--data", files["facts.dl"], "--workers", "4",
            "--timeout", "0.000001",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "aborted:" in captured.err
        assert "Traceback" not in captured.err


class TestSessionWorkers:
    def test_session_run_with_workers(self, files, tmp_path, capsys):
        code = main([
            "session", "run", files["program.dl"], "--query", "p",
            "--data", files["facts.dl"],
            "--checkpoint-dir", str(tmp_path / "ckpt"), "--workers", "2",
        ])
        assert code == 0
        assert "p" in capsys.readouterr().out

    def test_session_naive_strategy_rejects_workers(self, files, tmp_path, capsys):
        code = main([
            "session", "run", files["program.dl"], "--query", "p",
            "--data", files["facts.dl"],
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--workers", "2", "--strategy", "naive",
        ])
        assert code == 2
        assert "seminaive" in capsys.readouterr().err


class TestProfileWorkers:
    def test_profile_renders_shard_worker_table(self, files, capsys):
        code = main([
            "profile", files["program.dl"], "--query", "p",
            "--data", files["facts.dl"], "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "shard workers (2):" in out
