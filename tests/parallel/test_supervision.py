"""Chaos-driven supervision tests: injected worker kills at the
dispatch/merge fault sites, the recovery counters, and the degradation
ladder down to the sequential columnar engine.

The core invariant under test: a worker killed at *any* dispatch or
merge occurrence is recovered (respawn + shard re-dispatch) and the
result stays byte-identical to the sequential engine — digests,
iterations, ``rule_firings``, ``rows_scanned``, all of it — because
shards are pure functions of ``(round, partition)`` and a dead worker's
reply was never merged.
"""

import pytest

from repro.datalog.evaluation import EvaluationStats, evaluate
from repro.digest import fixpoint_digest
from repro.parallel import SupervisionPolicy
from repro.persist.store import RetryPolicy
from repro.robustness import FaultInjector
from repro.robustness.faults import chaos
from repro.workloads.generators import random_workload


def _workload(seed=21, **kwargs):
    kwargs.setdefault("nodes", 8)
    kwargs.setdefault("edges", 40)
    program, database, _ = random_workload(seed, **kwargs)
    return program, database.to_storage("columnar")


def _digest(result):
    return fixpoint_digest([("workload", result.idb)])


@pytest.fixture()
def reference():
    program, database = _workload()
    return evaluate(program, database.copy(), engine="slots", storage="columnar")


# ----------------------------------------------------------------------
# Injected worker kills at the dispatch / merge sites


class TestChaosWorkerKill:
    @pytest.mark.parametrize("occurrence", [1, 2, 3, 5])
    def test_kill_at_dispatch_recovers_byte_identical(self, reference, occurrence):
        program, database = _workload()
        injector = FaultInjector().arm("shard.dispatch", at=occurrence)
        with chaos(injector):
            result = evaluate(program, database, workers=2)
        assert injector.fired, "the armed occurrence must actually fire"
        assert _digest(result) == _digest(reference)
        assert result.stats.iterations == reference.stats.iterations
        assert result.stats.rule_firings == reference.stats.rule_firings
        assert result.stats.facts_derived == reference.stats.facts_derived
        assert result.stats.rows_scanned == reference.stats.rows_scanned
        assert result.stats.worker_restarts >= 1
        assert result.stats.shards_redispatched >= 1
        assert result.stats.degradations == 0
        assert result.fallbacks == ()

    @pytest.mark.parametrize("occurrence", [1, 2])
    def test_kill_at_merge_recovers_byte_identical(self, reference, occurrence):
        # A merge-site kill lands *after* the reply was folded in, so
        # the kill costs nothing that round; the dead pipe engages
        # recovery at the next barrier's dispatch.
        program, database = _workload()
        injector = FaultInjector().arm("shard.merge", at=occurrence)
        with chaos(injector):
            result = evaluate(program, database, workers=2)
        assert injector.fired
        assert _digest(result) == _digest(reference)
        assert result.stats.rule_firings == reference.stats.rule_firings
        assert result.stats.worker_restarts >= 1

    def test_recovery_counters_in_per_rule_agreement(self, reference):
        # Per-rule rows_scanned — the strictest counter — survives a
        # mid-run worker kill and re-dispatch untouched.
        program, database = _workload()
        injector = FaultInjector().arm("shard.dispatch", at=2)
        with chaos(injector):
            result = evaluate(program, database, workers=2)
        assert (
            result.stats.rows_scanned_by_rule
            == reference.stats.rows_scanned_by_rule
        )


# ----------------------------------------------------------------------
# Retry exhaustion: the degradation ladder, never exit 2


class TestDegradationLadder:
    def test_exhaustion_degrades_to_sequential(self, reference):
        # Every dispatch kills its worker and the retry budget allows
        # zero respawns: each fleet size is exhausted immediately and
        # the run walks the whole ladder down to sequential columnar —
        # completing with the right answer instead of raising.
        program, database = _workload()
        injector = FaultInjector().arm("shard.dispatch", times=500)
        policy = SupervisionPolicy(retry=RetryPolicy(attempts=1, base_delay=0.0))
        with chaos(injector):
            result = evaluate(program, database, workers=2, supervision=policy)
        assert _digest(result) == _digest(reference)
        assert result.stats.degradations == 2
        stages = [step.stage for step in result.fallbacks]
        targets = [step.fell_back_to for step in result.fallbacks]
        assert stages == ["sharded-w2", "sharded-w1"]
        assert targets == ["sharded-w1", "sequential-columnar"]
        for step in result.fallbacks:
            assert "retry budget" in step.reason

    def test_partial_recovery_then_exhaustion_carries_counters(self, reference):
        # One respawn is allowed per fleet size; the killed replacements
        # drain it and the carried worker_restarts survive degradation.
        program, database = _workload()
        injector = FaultInjector().arm("shard.dispatch", times=500)
        policy = SupervisionPolicy(retry=RetryPolicy(attempts=2, base_delay=0.0))
        with chaos(injector):
            result = evaluate(program, database, workers=2, supervision=policy)
        assert _digest(result) == _digest(reference)
        assert result.stats.degradations == 2
        assert result.stats.worker_restarts >= 1

    def test_degrade_trace_events(self):
        from repro.observability import RingBufferSink

        program, database = _workload()
        injector = FaultInjector().arm("shard.dispatch", times=500)
        sink = RingBufferSink()
        policy = SupervisionPolicy(retry=RetryPolicy(attempts=1, base_delay=0.0))
        with chaos(injector, sink):
            evaluate(program, database, workers=2, supervision=policy)
        degrades = [e for e in sink.events if e.name == "shard.degrade"]
        assert [e.attrs["stage"] for e in degrades] == ["sharded-w2", "sharded-w1"]
        assert degrades[-1].attrs["fell_back_to"] == "sequential-columnar"


# ----------------------------------------------------------------------
# Stats plumbing for the recovery counters


class TestRecoveryStats:
    def test_as_dict_merge_from_dict_round_trip(self):
        stats = EvaluationStats()
        stats.worker_restarts = 2
        stats.shards_redispatched = 3
        stats.degradations = 1
        payload = stats.as_dict()
        assert payload["worker_restarts"] == 2
        assert payload["shards_redispatched"] == 3
        assert payload["degradations"] == 1
        rebuilt = EvaluationStats.from_dict(payload)
        assert rebuilt.worker_restarts == 2
        assert rebuilt.shards_redispatched == 3
        assert rebuilt.degradations == 1
        other = EvaluationStats()
        other.worker_restarts = 1
        other.shards_redispatched = 1
        rebuilt.merge(other)
        assert rebuilt.worker_restarts == 3
        assert rebuilt.shards_redispatched == 4
        assert rebuilt.degradations == 1

    def test_from_dict_tolerates_missing_recovery_keys(self):
        # Payloads written before the supervision layer existed.
        payload = EvaluationStats().as_dict()
        for key in ("worker_restarts", "shards_redispatched", "degradations"):
            payload.pop(key)
        rebuilt = EvaluationStats.from_dict(payload)
        assert rebuilt.worker_restarts == 0
        assert rebuilt.shards_redispatched == 0
        assert rebuilt.degradations == 0

    def test_compare_covers_recovery_counters(self):
        a = EvaluationStats()
        b = EvaluationStats()
        b.worker_restarts = 1
        diff = a.compare(b)
        assert any("worker_restarts" in line for line in diff)


# ----------------------------------------------------------------------
# arm_random determinism across engines and fleet sizes (satellite)


class TestArmRandomDeterminism:
    @staticmethod
    def _fired(engine_kwargs, seed=13, rate=0.35):
        program, database = _workload(seed=5, nodes=6, edges=18)
        injector = FaultInjector(seed).arm_random("iteration", rate=rate)
        with chaos(injector):
            try:
                evaluate(program, database, **engine_kwargs)
            except Exception:
                pass
        return list(injector.fired)

    def test_same_seed_same_occurrences_across_engines_and_workers(self):
        # ``iteration`` fires once per semi-naive round in every
        # configuration, and the rng draw sequence depends only on the
        # observation sequence — so the faulted occurrences agree
        # across both engines and every fleet size.
        configs = [
            {"engine": "interpreted"},
            {"engine": "slots"},
            {"engine": "slots", "storage": "columnar"},
            {"workers": 1},
            {"workers": 2},
            {"workers": 4},
        ]
        patterns = [self._fired(config) for config in configs]
        assert all(pattern == patterns[0] for pattern in patterns[1:])
        assert patterns[0], "the random arm must fire at least once"

    def test_different_seed_differs(self):
        # Seed 13 first fires at occurrence 1, seed 0 at occurrence 4
        # (the workload runs 7 rounds) — different seeds, different
        # faulted occurrences.
        base = self._fired({"engine": "slots"}, seed=13)
        other = self._fired({"engine": "slots"}, seed=0)
        assert base != other
