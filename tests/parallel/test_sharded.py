"""The sharded evaluator's own contract: argument validation, the
pool protocol, the sharding report, checkpoint/resume symmetry with the
sequential engine, trace events, and worker-death failure modes.

Cross-engine *agreement* (digests, iterations, work counters) lives in
``tests/datalog/test_engines_agree.py``; this file covers everything
around the fixpoint itself.
"""

import pytest

from repro.datalog.evaluation import evaluate
from repro.digest import fixpoint_digest
from repro.observability import RingBufferSink, tracing
from repro.parallel import WorkerFailure, WorkerPool, evaluate_sharded
from repro.workloads.generators import random_workload


def _workload(seed=21, **kwargs):
    kwargs.setdefault("nodes", 8)
    kwargs.setdefault("edges", 40)
    program, database, _ = random_workload(seed, **kwargs)
    return program, database.to_storage("columnar")


def _digest(result):
    return fixpoint_digest([("workload", result.idb)])


# ----------------------------------------------------------------------
# Validation


class TestValidation:
    def test_rejects_non_positive_workers(self):
        program, database = _workload()
        with pytest.raises(ValueError, match="positive int"):
            evaluate_sharded(program, database, workers=0)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            WorkerPool(program, database, 0)

    def test_rejects_provenance(self):
        program, database = _workload()
        with pytest.raises(ValueError, match="provenance"):
            evaluate_sharded(program, database, workers=2, provenance=True)

    def test_rejects_naive_strategy(self):
        program, database = _workload()
        with pytest.raises(ValueError, match="seminaive"):
            evaluate_sharded(program, database, workers=2, strategy="naive")

    def test_evaluate_rejects_workers_on_interpreted_engine(self):
        program, database = _workload()
        with pytest.raises(ValueError, match="slot engine"):
            evaluate(program, database, engine="interpreted", workers=2)

    def test_pool_requires_columnar_database(self):
        program, database, _ = random_workload(0)
        with pytest.raises(ValueError, match="columnar"):
            WorkerPool(program, database, 2)  # rows backend


class TestPoolMismatch:
    def test_worker_count_mismatch(self):
        program, database = _workload(0, nodes=4, edges=6)
        with WorkerPool(program, database, 2) as pool:
            with pytest.raises(ValueError, match="pool has 2 workers"):
                evaluate_sharded(program, database, workers=4, pool=pool)

    def test_different_database_object(self):
        program, database = _workload(0, nodes=4, edges=6)
        with WorkerPool(program, database, 2) as pool:
            with pytest.raises(ValueError, match="different program/database"):
                evaluate_sharded(program, database.copy(), workers=2, pool=pool)

    def test_plan_order_mismatch(self):
        program, database = _workload(0, nodes=4, edges=6)
        with WorkerPool(program, database, 2, plan_order="cost") as pool:
            with pytest.raises(ValueError, match="plan_order"):
                evaluate_sharded(
                    program, database, workers=2, pool=pool, plan_order="greedy"
                )

    def test_prebuilt_pool_cannot_resume(self):
        program, database = _workload(0, nodes=4, edges=6)
        snaps = []
        evaluate(
            program,
            database.copy(),
            checkpoint_every=1,
            checkpoint_sink=snaps.append,
        )
        with WorkerPool(program, database, 2) as pool:
            with pytest.raises(ValueError, match="cannot resume"):
                evaluate_sharded(
                    program, database, workers=2, pool=pool, resume_from=snaps[0]
                )


# ----------------------------------------------------------------------
# The sharding report and the pre-built pool path


def test_shards_report_shape_and_accounting():
    program, database = _workload()
    result = evaluate_sharded(program, database, workers=2)
    shards = result.shards
    assert shards["workers"] == 2
    assert len(shards["per_worker"]) == 2
    for report in shards["per_worker"]:
        assert set(report) == {
            "tasks", "cpu_seconds", "wall_seconds", "results", "accepted",
        }
        assert report["tasks"] >= 0 and report["cpu_seconds"] >= 0.0
    # Something was actually dispatched, and the modeled critical path
    # is master serial time plus at least one barrier's worker CPU.
    assert sum(r["tasks"] for r in shards["per_worker"]) > 0
    assert shards["critical_path_seconds"] >= shards["master_serial_seconds"]
    assert shards["master_serial_seconds"] >= 0.0


def test_prebuilt_pool_matches_own_pool_digest():
    program, database = _workload()
    own = evaluate_sharded(program, database.copy(), workers=2)
    pooled_db = database.copy().to_storage("columnar")
    with WorkerPool(program, pooled_db, 2) as pool:
        pooled = evaluate_sharded(program, pooled_db, workers=2, pool=pool)
    assert _digest(pooled) == _digest(own)
    assert pooled.stats.iterations == own.stats.iterations


# ----------------------------------------------------------------------
# Checkpoint / resume symmetry with the sequential engine


def test_sharded_checkpoints_resume_sequentially_and_back():
    program, database = _workload()
    reference = evaluate(program, database.copy(), engine="slots")
    # Sharded run writes checkpoints...
    snaps = []
    sharded = evaluate_sharded(
        program,
        database.copy(),
        workers=2,
        checkpoint_every=1,
        checkpoint_sink=snaps.append,
    )
    assert _digest(sharded) == _digest(reference)
    assert snaps, "checkpoint_every=1 must emit at least one snapshot"
    mid = snaps[len(snaps) // 2]
    # ...the sequential engine resumes from one of them...
    sequential_resumed = evaluate(
        program, database.copy(), engine="slots", resume_from=mid
    )
    assert _digest(sequential_resumed) == _digest(reference)
    # ...and the sharded evaluator resumes from a sequential snapshot.
    seq_snaps = []
    evaluate(
        program,
        database.copy(),
        engine="slots",
        checkpoint_every=1,
        checkpoint_sink=seq_snaps.append,
    )
    sharded_resumed = evaluate_sharded(
        program,
        database.copy().to_storage("columnar"),
        workers=2,
        resume_from=seq_snaps[len(seq_snaps) // 2],
    )
    assert _digest(sharded_resumed) == _digest(reference)


# ----------------------------------------------------------------------
# Trace events


def test_dispatch_and_merge_trace_events():
    program, database = _workload()
    sink = RingBufferSink()
    with tracing(sink):
        evaluate_sharded(program, database, workers=2)
    events = [e for e in sink.events if e.name.startswith("shard.")]
    dispatches = [e for e in events if e.name == "shard.dispatch"]
    merges = [e for e in events if e.name == "shard.merge"]
    assert dispatches and merges
    for event in dispatches:
        assert event.attrs["worker"] in (0, 1)
        assert event.attrs["delta_rows"] >= 0
    for event in merges:
        assert event.attrs["results"] >= 0
        assert event.attrs["accepted"] >= 0
        assert event.attrs["elapsed"] >= 0.0
    # Every dispatched (worker, scc, iteration) barrier merges back.
    dispatched = {
        (e.attrs["worker"], e.attrs["scc"], e.attrs["iteration"])
        for e in dispatches
    }
    merged = {
        (e.attrs["worker"], e.attrs["scc"], e.attrs["iteration"])
        for e in merges
    }
    assert dispatched == merged


# ----------------------------------------------------------------------
# Failure modes and supervision


def test_dead_worker_is_recovered_not_fatal():
    """A worker dead before dispatch is respawned, not a WorkerFailure."""
    program, database = _workload()
    reference = evaluate(program, database.copy(), engine="slots")
    pool = WorkerPool(program, database, 2)
    try:
        pool.procs[0].terminate()
        pool.procs[0].join(timeout=5.0)
        result = evaluate_sharded(program, database, workers=2, pool=pool)
    finally:
        pool.close()
    assert _digest(result) == _digest(reference)
    assert result.stats.worker_restarts >= 1
    assert result.stats.shards_redispatched >= 1
    assert result.stats.iterations == reference.stats.iterations
    assert result.stats.rule_firings == reference.stats.rule_firings


def test_recovery_exhaustion_raises_fleet_exhausted():
    """A worker that dies on every respawn drains the retry budget."""
    from repro.parallel import FleetExhausted, SupervisionPolicy
    from repro.persist.store import RetryPolicy

    program, database = _workload()
    pool = WorkerPool(program, database, 2)
    original_respawn = pool.respawn

    def doomed_respawn(index, *, idb=None):
        conn = original_respawn(index, idb=idb)
        pool.kill(index)  # replacement dies immediately
        return conn

    pool.respawn = doomed_respawn
    try:
        pool.procs[0].terminate()
        pool.procs[0].join(timeout=5.0)
        with pytest.raises(FleetExhausted, match="retry budget"):
            evaluate_sharded(
                program,
                database,
                workers=2,
                pool=pool,
                supervision=SupervisionPolicy(
                    retry=RetryPolicy(attempts=2, base_delay=0.0)
                ),
            )
    finally:
        pool.close()


def test_straggler_is_killed_and_recovered():
    """A SIGSTOP-ed worker trips the straggler timeout and is replaced."""
    import signal

    from repro.parallel import SupervisionPolicy
    from repro.persist.store import RetryPolicy

    program, database = _workload()
    reference = evaluate(program, database.copy(), engine="slots")
    pool = WorkerPool(program, database, 2)
    try:
        import os

        os.kill(pool.procs[0].pid, signal.SIGSTOP)
        result = evaluate_sharded(
            program,
            database,
            workers=2,
            pool=pool,
            supervision=SupervisionPolicy(
                retry=RetryPolicy(base_delay=0.0),
                straggler_timeout=0.5,
            ),
        )
    finally:
        pool.close()
    assert _digest(result) == _digest(reference)
    assert result.stats.worker_restarts >= 1


def test_recovery_trace_events():
    """shard.retry and shard.respawn events are emitted on recovery."""
    program, database = _workload()
    pool = WorkerPool(program, database, 2)
    sink = RingBufferSink()
    try:
        pool.procs[1].terminate()
        pool.procs[1].join(timeout=5.0)
        with tracing(sink):
            evaluate_sharded(program, database, workers=2, pool=pool)
    finally:
        pool.close()
    retries = [e for e in sink.events if e.name == "shard.retry"]
    respawns = [e for e in sink.events if e.name == "shard.respawn"]
    assert retries and respawns
    assert retries[0].attrs["worker"] == 1
    assert "reason" in retries[0].attrs and retries[0].attrs["delay"] >= 0.0
    assert respawns[0].attrs["worker"] == 1


def test_pool_close_is_idempotent():
    program, database = _workload(0, nodes=4, edges=6)
    pool = WorkerPool(program, database, 1)
    pool.close()
    pool.close()  # second close is a no-op, not an error


def test_pool_close_leaves_no_zombies():
    """After an aborted round every worker process is reaped and closed."""
    program, database = _workload()
    pool = WorkerPool(program, database, 2)
    procs = list(pool.procs)
    pool.procs[0].terminate()
    pool.procs[0].join(timeout=5.0)
    pool.close()
    for proc in procs:
        # A closed Process raises ValueError on any operation: the pool
        # released the underlying handle, so no zombie can linger.
        with pytest.raises(ValueError):
            proc.is_alive()
