"""CLI tests: every command end to end via temp files."""

import pytest

from repro.cli import main

PROGRAM = """
p(X, Y) :- a(X, Y).
p(X, Y) :- b(X, Y).
p(X, Y) :- a(X, Z), p(Z, Y).
p(X, Y) :- b(X, Z), p(Z, Y).
"""

CONSTRAINTS = ":- a(X, Y), b(Y, Z)."

FACTS = """
a(3, 4). a(4, 5).
b(1, 2). b(2, 3).
"""

BAD_FACTS = FACTS + "\na(2, 1).\n"


@pytest.fixture()
def files(tmp_path):
    paths = {}
    for name, content in {
        "program.dl": PROGRAM,
        "ics.dl": CONSTRAINTS,
        "facts.dl": FACTS,
        "bad_facts.dl": BAD_FACTS,
        "unsat.dl": "q(X) :- a(X, Y), b(Y, Z).",
        "ucq.dl": "p(X, Y) :- a(X, Z). p(X, Y) :- b(X, Z).",
    }.items():
        path = tmp_path / name
        path.write_text(content)
        paths[name] = str(path)
    return paths


class TestOptimize:
    def test_summary(self, files, capsys):
        assert main(["optimize", files["program.dl"], "--constraints", files["ics.dl"], "--query", "p"]) == 0
        out = capsys.readouterr().out
        assert "original rules: 4" in out
        assert "p_1" in out

    def test_explain(self, files, capsys):
        assert main([
            "optimize", files["program.dl"], "--constraints", files["ics.dl"],
            "--query", "p", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "== Adornments ==" in out
        assert "== Query tree ==" in out
        assert "== Rewritten program P' ==" in out

    def test_unsatisfiable_program(self, files, capsys):
        assert main([
            "optimize", files["unsat.dl"], "--constraints", files["ics.dl"], "--query", "q",
        ]) == 0
        assert "unsatisfiable" in capsys.readouterr().out

    def test_query_required(self, files, capsys):
        code = main(["optimize", files["program.dl"], "--constraints", files["ics.dl"]])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_answers_printed(self, files, capsys):
        assert main([
            "run", files["program.dl"], "--query", "p", "--data", files["facts.dl"],
        ]) == 0
        out = capsys.readouterr().out
        assert "answers (10):" in out
        assert "p(1, 5)" in out

    def test_compare(self, files, capsys):
        assert main([
            "run", files["program.dl"], "--constraints", files["ics.dl"],
            "--query", "p", "--data", files["facts.dl"], "--compare",
        ]) == 0
        out = capsys.readouterr().out
        assert "optimized work:" in out
        assert "answers match" in out


class TestCheck:
    def test_satisfied(self, files, capsys):
        assert main(["check", files["ics.dl"], "--data", files["facts.dl"]]) == 0
        assert "satisfied" in capsys.readouterr().out

    def test_violated(self, files, capsys):
        assert main(["check", files["ics.dl"], "--data", files["bad_facts.dl"]]) == 1
        assert "VIOLATED" in capsys.readouterr().out


class TestDecisionCommands:
    def test_satisfiable(self, files, capsys):
        assert main([
            "satisfiable", files["program.dl"], "--constraints", files["ics.dl"], "--query", "p",
        ]) == 0
        assert "satisfiable" in capsys.readouterr().out

    def test_unsatisfiable(self, files, capsys):
        assert main([
            "satisfiable", files["unsat.dl"], "--constraints", files["ics.dl"], "--query", "q",
        ]) == 1
        assert "unsatisfiable" in capsys.readouterr().out

    def test_empty(self, files, capsys):
        assert main(["empty", files["unsat.dl"], "--constraints", files["ics.dl"]]) == 1
        out = capsys.readouterr().out
        assert "empty" in out and "initialization rule" in out

    def test_nonempty(self, files, capsys):
        assert main(["empty", files["program.dl"], "--constraints", files["ics.dl"]]) == 0
        assert "nonempty" in capsys.readouterr().out

    def test_contained(self, files, capsys):
        assert main([
            "contained", files["program.dl"], "--query", "p", "--ucq", files["ucq.dl"],
        ]) == 0
        assert "contained" in capsys.readouterr().out
