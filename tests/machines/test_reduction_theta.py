"""Theorem 5.3 variant: the {!=}-ic reduction."""

import pytest

from repro.constraints.integrity import database_satisfies, violations
from repro.constraints.locality import is_fully_local
from repro.datalog.evaluation import evaluate
from repro.machines.reduction_theta import build_reduction_theta, theta_database_for
from repro.machines.two_counter import busy_machine, counting_machine


@pytest.fixture(scope="module")
def artifacts():
    machine = counting_machine(3)
    trace = machine.trace_if_halts(200)
    return machine, trace, build_reduction_theta(machine)


class TestHaltingDirection:
    def test_consistent_and_halting(self, artifacts):
        machine, trace, art = artifacts
        database = theta_database_for(machine, trace)
        assert database_satisfies(art.constraints, database)
        assert len(evaluate(art.program, database).relation("halt")) > 0

    def test_busy_machine(self):
        machine = busy_machine(2)
        trace = machine.trace_if_halts(300)
        art = build_reduction_theta(machine)
        database = theta_database_for(machine, trace)
        assert database_satisfies(art.constraints, database)
        assert len(evaluate(art.program, database).relation("halt")) > 0

    def test_only_order_atoms_no_negation(self, artifacts):
        """The Theorem 5.3 class: {!=}-ic's, no negated EDB atoms."""
        _, _, art = artifacts
        assert all(not ic.has_negation() for ic in art.constraints)
        assert any(ic.has_order_atoms() for ic in art.constraints)

    def test_constraints_are_nonlocal(self, artifacts):
        """The != atoms span different body atoms: the undecidable frontier."""
        _, _, art = artifacts
        assert any(not is_fully_local(ic) for ic in art.constraints)

    def test_smaller_than_theorem_54_encoding(self, artifacts):
        """No dom/eq/neq machinery: fewer ic's and a much smaller EDB."""
        from repro.machines.reduction import build_reduction, consistent_database_for

        machine, trace, art = artifacts
        full = build_reduction(machine)
        assert len(art.constraints) < len(full.constraints)
        assert theta_database_for(machine, trace).size() < consistent_database_for(
            machine, trace
        ).size()


class TestTamperDetection:
    def _violated(self, art, database):
        return any(violations(ic, database) for ic in art.constraints)

    def test_wrong_state(self, artifacts):
        machine, trace, art = artifacts
        database = theta_database_for(machine, trace)
        database.add_row("cnfg", (2, 2, 0, 1))
        assert self._violated(art, database)

    def test_wrong_counter(self, artifacts):
        machine, trace, art = artifacts
        database = theta_database_for(machine, trace)
        database.add_row("cnfg", (1, 2, 0, 1))
        assert self._violated(art, database)

    def test_branching_succ(self, artifacts):
        machine, trace, art = artifacts
        database = theta_database_for(machine, trace)
        database.add_row("succ", (0, 3))
        assert self._violated(art, database)

    def test_two_zeros(self, artifacts):
        machine, trace, art = artifacts
        database = theta_database_for(machine, trace)
        database.add_row("zero", (2,))
        assert self._violated(art, database)

    def test_self_loop_succ(self, artifacts):
        machine, trace, art = artifacts
        database = theta_database_for(machine, trace)
        database.add_row("succ", (3, 3))
        assert self._violated(art, database)

    def test_nonzero_initial(self, artifacts):
        machine, trace, art = artifacts
        database = theta_database_for(machine, trace)
        database.add_row("cnfg", (0, 1, 0, 0))
        assert self._violated(art, database)
