"""Two-counter machine model and simulator tests."""

import pytest

from repro.machines.two_counter import (
    DEC,
    INC,
    NOP,
    Configuration,
    Transition,
    TwoCounterMachine,
    busy_machine,
    counting_machine,
    looping_machine,
)


class TestModelValidation:
    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            Transition(0, "bump", NOP)

    def test_halt_state_range(self):
        with pytest.raises(ValueError):
            TwoCounterMachine(2, 5, {})

    def test_halt_state_must_be_final(self):
        with pytest.raises(ValueError):
            TwoCounterMachine(
                2, 1, {(1, True, True): Transition(0, NOP, NOP)}
            )

    def test_transition_state_range(self):
        with pytest.raises(ValueError):
            TwoCounterMachine(
                2, 1, {(0, True, True): Transition(7, NOP, NOP)}
            )


class TestSimulator:
    def test_counting_machine_trace(self):
        machine = counting_machine(3)
        trace = machine.run(100)
        assert trace[0] == Configuration(0, 0, 0, 0)
        assert trace[-1].state == machine.halt_state
        assert trace[-1].counter1 == 3

    def test_halts_decision(self):
        assert counting_machine(2).halts(100) is True
        assert looping_machine().halts(50) is None  # runs forever
        assert busy_machine(3).halts(200) is True

    def test_stuck_machine_detected(self):
        # A machine whose only transition decrements a zero counter.
        machine = TwoCounterMachine(
            2, 1, {(0, True, True): Transition(0, DEC, NOP)}
        )
        assert machine.halts(10) is False

    def test_trace_if_halts(self):
        assert counting_machine(1).trace_if_halts(50) is not None
        assert looping_machine().trace_if_halts(10) is None

    def test_busy_machine_transfers(self):
        machine = busy_machine(2)
        trace = machine.trace_if_halts(200)
        assert trace is not None
        # The pump loads counter1 with 2 before transfer.
        assert max(c.counter1 for c in trace) == 2
        assert max(c.counter2 for c in trace) == 2
        # Counters drain through DEC steps.
        assert any(c.counter1 == 0 and c.counter2 == 2 for c in trace)

    def test_time_strictly_increases(self):
        trace = busy_machine(2).run(200)
        times = [c.time for c in trace]
        assert times == list(range(len(trace)))

    def test_run_respects_budget(self):
        trace = looping_machine().run(7)
        assert len(trace) == 8  # initial configuration + 7 steps
