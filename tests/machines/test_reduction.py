"""E8 — the Theorem 5.4 construction: halting as satisfiability.

For a halting machine the encoded run is a consistent EDB on which the
program derives ``halt``; tampering with the encoding violates the
ic's; the structural ic's police eq/neq/succ discipline.
"""

import pytest

from repro.constraints.integrity import database_satisfies, violations
from repro.datalog.evaluation import evaluate
from repro.machines.reduction import build_reduction, consistent_database_for
from repro.machines.two_counter import busy_machine, counting_machine


def halts_and_derives(machine):
    trace = machine.trace_if_halts(500)
    assert trace is not None
    artifacts = build_reduction(machine)
    database = consistent_database_for(machine, trace)
    consistent = database_satisfies(artifacts.constraints, database)
    result = evaluate(artifacts.program, database)
    return consistent, len(result.relation("halt")) > 0, artifacts, database


class TestHaltingDirection:
    def test_counting_machine(self):
        consistent, halt, _, _ = halts_and_derives(counting_machine(3))
        assert consistent and halt

    def test_busy_machine(self):
        consistent, halt, _, _ = halts_and_derives(busy_machine(2))
        assert consistent and halt

    def test_reach_covers_all_times(self):
        machine = counting_machine(2)
        trace = machine.trace_if_halts(100)
        artifacts = build_reduction(machine)
        database = consistent_database_for(machine, trace)
        result = evaluate(artifacts.program, database)
        assert result.rows("reach") == {(c.time,) for c in trace}

    def test_program_is_not_class_restricted(self):
        artifacts = build_reduction(counting_machine(1))
        # The *program* is plain datalog; the ic's carry the negation.
        assert artifacts.program.classification() == frozenset()
        assert any(ic.has_negation() for ic in artifacts.constraints)

    def test_constraints_are_not_fully_local(self):
        """The undecidable fragment: non-local negated atoms are present."""
        from repro.constraints.locality import is_fully_local

        artifacts = build_reduction(counting_machine(1))
        assert any(not is_fully_local(ic) for ic in artifacts.constraints)


class TestTamperDetection:
    @pytest.fixture()
    def setup(self):
        machine = counting_machine(3)
        trace = machine.trace_if_halts(100)
        artifacts = build_reduction(machine)
        return machine, trace, artifacts

    def _violated(self, artifacts, database):
        return any(violations(ic, database) for ic in artifacts.constraints)

    def test_wrong_state_detected(self, setup):
        machine, trace, artifacts = setup
        database = consistent_database_for(machine, trace)
        database.add_row("cnfg", (2, 2, 0, 1))  # state should be 2 at t=2
        assert self._violated(artifacts, database)

    def test_wrong_counter_detected(self, setup):
        machine, trace, artifacts = setup
        database = consistent_database_for(machine, trace)
        database.add_row("cnfg", (2, 4, 0, 2))  # counter1 jumped by 2
        assert self._violated(artifacts, database)

    def test_nonzero_initial_configuration_detected(self, setup):
        machine, trace, artifacts = setup
        database = consistent_database_for(machine, trace)
        database.add_row("cnfg", (0, 1, 0, 0))
        assert self._violated(artifacts, database)

    def test_succ_into_zero_detected(self, setup):
        machine, trace, artifacts = setup
        database = consistent_database_for(machine, trace)
        database.add_row("succ", (3, 0))
        assert self._violated(artifacts, database)

    def test_missing_domain_entry_detected(self, setup):
        machine, trace, artifacts = setup
        database = consistent_database_for(machine, trace)
        database.add_row("succ", (98, 99))  # constants outside dom
        assert self._violated(artifacts, database)

    def test_eq_neq_conflict_detected(self, setup):
        machine, trace, artifacts = setup
        database = consistent_database_for(machine, trace)
        database.add_row("eq", (0, 1))  # 0 = 1 conflicts with neq(0, 1)
        assert self._violated(artifacts, database)
